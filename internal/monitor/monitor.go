// Package monitor is the blocking kernel shared by the simulated MPI and
// OpenMP runtimes: a single global monitor through which every blocking
// operation (collective wait, message rendezvous, team barrier, single
// election wait, critical acquisition, CC agreement) must pass.
//
// Because all thread liveness transitions and all waits are registered
// here under one mutex, the monitor detects deadlock deterministically and
// without timeouts: the instant every live thread is blocked, no further
// progress is possible, and the monitor aborts the run with a report
// listing what every thread was waiting for. This replaces the "job hangs
// on the cluster until the batch limit" experience the paper's tool is
// designed to prevent — and gives the test suite an exact oracle for the
// error programs the validator must catch before this point.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Monitor coordinates all blocking in one run.
type Monitor struct {
	mu       sync.Mutex
	live     int
	blocked  int
	waiters  map[*Waiter]bool
	aborted  atomic.Bool
	err      error
	analyzer []func() []string
	sched    SchedHook
	// free recycles Waiter structs (and their channels): a thread that
	// blocks in a loop — team barriers, collective rounds — reuses one
	// waiter instead of allocating per wait. Waiters return here at the
	// end of Await, when nothing else can reference them (wakes are
	// precise and happen exactly once per wait).
	free []*Waiter
	// drained is closed when the last live thread exits (live returns
	// to 0 after having been positive); see Drained.
	drained  chan struct{}
	everLive bool
}

// SchedHook is the scheduling controller interface (internal/sched): a
// serializing scheduler that tracks exactly one running thread at a
// time. The monitor is the single chokepoint every blocking transition
// passes through, so these five callbacks are all a controller needs to
// keep its runnable set exact. Waiter identities are passed as `any` so
// the monitor stays free of scheduler types.
//
// HolderParked, WaiterWoken, HolderExited and ReleaseAll are called with
// the monitor lock held (lock order: monitor → controller). Resume is
// called lock-free from Await and may block until the controller grants
// the woken thread the run token again.
type SchedHook interface {
	// HolderParked: the running thread just registered as blocked on w.
	HolderParked(w any)
	// WaiterWoken: w was released; its thread is runnable again.
	WaiterWoken(w any)
	// Resume: w's thread returned from its wait and must re-acquire the
	// run token before continuing.
	Resume(w any)
	// HolderExited: the running thread's goroutine is done.
	HolderExited()
	// ReleaseAll: the run aborted; stop scheduling, free everything.
	ReleaseAll()
}

// SetSched installs the scheduling controller. Must be called before the
// run starts; a nil controller (the default) keeps the monitor's
// behavior unchanged.
func (m *Monitor) SetSched(h SchedHook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sched = h
}

// New returns an empty monitor.
func New() *Monitor {
	return &Monitor{waiters: make(map[*Waiter]bool)}
}

// Waiter represents one blocked thread.
type Waiter struct {
	// Reason is the operation class ("MPI collective", "team barrier", ...).
	Reason string
	// detail lazily describes the instance ("rank 2: MPI_Bcast (call
	// #14)"); it is only invoked when a deadlock report is built, so the
	// hot path never pays the formatting. It runs under the monitor
	// lock at report time, describing the (then frozen) deadlock state.
	detail func() string
	m      *Monitor
	ch     chan struct{}
	err    error
	// sched, when the thread actually parked under a scheduling
	// controller, routes the post-wake Resume through the controller.
	sched SchedHook
}

// Lock acquires the global monitor mutex. Subsystems hold it while
// inspecting or updating their shared state and while creating or waking
// waiters, which is what makes the quiescence check exact.
func (m *Monitor) Lock() { m.mu.Lock() }

// Unlock releases the global monitor mutex.
func (m *Monitor) Unlock() { m.mu.Unlock() }

// AddAnalyzer registers a callback that contributes context lines to the
// deadlock report (e.g. the MPI matcher describing which ranks already
// finalized). Must be called before the run starts.
func (m *Monitor) AddAnalyzer(f func() []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.analyzer = append(m.analyzer, f)
}

// ThreadStarted registers a new live thread (lock taken internally).
func (m *Monitor) ThreadStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live++
	m.everLive = true
}

// Drained returns a channel that is closed once every registered thread
// has exited (live back to 0 after the run started). A world's Run
// returning only proves the *process mains* are done: team-worker
// goroutines released from their final join barrier can still be
// between wake-up and ThreadExited, touching their team, runtime and
// scheduling gates. Run-state recycling (internal/interp's session
// pools) must wait on this channel first — ThreadExited is every
// goroutine's last interaction with the run's shared state, so a closed
// channel means nothing can reach that state anymore.
func (m *Monitor) Drained() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.drained == nil {
		m.drained = make(chan struct{})
		if m.live == 0 && m.everLive {
			close(m.drained)
		}
	}
	return m.drained
}

// ThreadExited unregisters a live thread and re-checks for quiescence:
// a thread exiting while every other one is blocked is a deadlock (e.g. a
// process returning from main while its peers wait in a collective).
// Under a scheduling controller this must be the exiting goroutine's
// last monitor interaction: the controller hands the run token to the
// next thread here.
func (m *Monitor) ThreadExited() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live--
	m.checkQuiescenceLocked()
	if m.sched != nil && !m.aborted.Load() {
		m.sched.HolderExited()
	}
	if m.live == 0 && m.drained != nil {
		close(m.drained)
	}
}

// NewWaiterLocked registers the calling thread as blocked. The caller must
// hold the monitor lock, release it, then Await outside the lock. detail
// is deferred: it is only called (under the monitor lock) if the wait
// ends up in a deadlock report.
func (m *Monitor) NewWaiterLocked(reason string, detail func() string) *Waiter {
	var w *Waiter
	if n := len(m.free); n > 0 {
		w = m.free[n-1]
		m.free = m.free[:n-1]
		w.Reason, w.detail, w.err, w.sched = reason, detail, nil, nil
	} else {
		w = &Waiter{Reason: reason, detail: detail, m: m, ch: make(chan struct{}, 1)}
	}
	if m.aborted.Load() {
		// The run already failed; never park new arrivals.
		w.err = m.err
		w.ch <- struct{}{}
		return w
	}
	m.waiters[w] = true
	m.blocked++
	m.checkQuiescenceLocked()
	if m.sched != nil && !m.aborted.Load() {
		// The quiescence check ran first: if parking this thread
		// completed a deadlock, the run is aborted and the controller is
		// already released — no token handoff happens after abort.
		w.sched = m.sched
		m.sched.HolderParked(w)
	}
	return w
}

// WakeLocked releases a waiter. Wakes are precise: the waker has already
// established the condition the waiter was blocked on. The caller must
// hold the monitor lock.
func (m *Monitor) WakeLocked(w *Waiter) {
	if !m.waiters[w] {
		return
	}
	delete(m.waiters, w)
	m.blocked--
	if m.sched != nil {
		m.sched.WaiterWoken(w)
	}
	w.err = m.err
	w.ch <- struct{}{}
}

// Await blocks until woken or aborted, returning the abort error if the
// run failed. Must be called without the lock held. The waiter is dead
// after Await returns — it goes back on the monitor's free list, so
// callers must not retain it.
func (w *Waiter) Await() error {
	<-w.ch
	if w.sched != nil {
		w.sched.Resume(w)
	}
	err := w.err
	m := w.m
	m.mu.Lock()
	m.free = append(m.free, w)
	m.mu.Unlock()
	return err
}

// Abort fails the run: the first error wins, every current waiter is woken
// with it, and Aborted flips so running threads stop at their next check.
func (m *Monitor) Abort(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.AbortLocked(err)
}

// AbortLocked is Abort for callers already holding the lock.
func (m *Monitor) AbortLocked(err error) {
	if m.aborted.Load() {
		return
	}
	if m.sched != nil {
		// Release the scheduler before waking anyone so abort unwinding
		// free-runs instead of queueing on the run token.
		m.sched.ReleaseAll()
	}
	m.err = err
	m.aborted.Store(true)
	for w := range m.waiters {
		delete(m.waiters, w)
		m.blocked--
		w.err = err
		w.ch <- struct{}{}
	}
}

// Aborted reports whether the run failed; lock-free so interpreters can
// poll it on every statement.
func (m *Monitor) Aborted() bool { return m.aborted.Load() }

// Err returns the abort error, if any.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// ErrLocked is Err for callers already holding the (non-reentrant) lock.
func (m *Monitor) ErrLocked() error { return m.err }

// Stats reports the current liveness counters (for tests).
func (m *Monitor) Stats() (live, blocked int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live, m.blocked
}

// Reset rearms the monitor for a fresh run, keeping the waiter free
// list warm. Only call once the previous run has fully drained (see
// Drained): a straggler goroutine from the old run touching a reset
// monitor would corrupt both runs.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live = 0
	m.blocked = 0
	clear(m.waiters)
	m.aborted.Store(false)
	m.err = nil
	// Analyzers are kept: the owning world and verifier recycle along
	// with the monitor and their registrations stay valid.
	m.sched = nil
	m.drained = nil
	m.everLive = false
}

// checkQuiescenceLocked fires the deadlock detection: every live thread is
// blocked, so nothing can ever wake them.
func (m *Monitor) checkQuiescenceLocked() {
	if m.aborted.Load() || m.live == 0 || m.blocked != m.live {
		return
	}
	var lines []string
	for w := range m.waiters {
		lines = append(lines, fmt.Sprintf("  %s: %s", w.Reason, w.detail()))
	}
	sort.Strings(lines)
	for _, f := range m.analyzer {
		for _, l := range f() {
			lines = append(lines, "  "+l)
		}
	}
	m.AbortLocked(&DeadlockError{Details: lines})
}

// IsDeadlock reports whether err is (or wraps) the monitor's deadlock
// report — the oracle outcome the validation layers must preempt.
func IsDeadlock(err error) bool {
	var de *DeadlockError
	return errors.As(err, &de)
}

// DeadlockError reports that every live thread was blocked.
type DeadlockError struct {
	Details []string
}

// Error renders the full report.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	b.WriteString("deadlock: every live thread is blocked")
	if len(e.Details) > 0 {
		b.WriteString("\n")
		b.WriteString(strings.Join(e.Details, "\n"))
	}
	return b.String()
}
