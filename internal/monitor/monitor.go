// Package monitor is the blocking kernel shared by the simulated MPI and
// OpenMP runtimes: a single global monitor through which every blocking
// operation (collective wait, message rendezvous, team barrier, single
// election wait, critical acquisition, CC agreement) must pass.
//
// Because all thread liveness transitions and all waits are registered
// here under one mutex, the monitor detects deadlock deterministically and
// without timeouts: the instant every live thread is blocked, no further
// progress is possible, and the monitor aborts the run with a report
// listing what every thread was waiting for. This replaces the "job hangs
// on the cluster until the batch limit" experience the paper's tool is
// designed to prevent — and gives the test suite an exact oracle for the
// error programs the validator must catch before this point.
package monitor

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Monitor coordinates all blocking in one run.
type Monitor struct {
	mu       sync.Mutex
	live     int
	blocked  int
	waiters  map[*Waiter]bool
	aborted  atomic.Bool
	err      error
	analyzer []func() []string
}

// New returns an empty monitor.
func New() *Monitor {
	return &Monitor{waiters: make(map[*Waiter]bool)}
}

// Waiter represents one blocked thread.
type Waiter struct {
	// Reason is the operation class ("MPI collective", "team barrier", ...).
	Reason string
	// Detail describes the instance ("rank 2: MPI_Bcast (call #14)").
	Detail string
	ch     chan struct{}
	err    error
}

// Lock acquires the global monitor mutex. Subsystems hold it while
// inspecting or updating their shared state and while creating or waking
// waiters, which is what makes the quiescence check exact.
func (m *Monitor) Lock() { m.mu.Lock() }

// Unlock releases the global monitor mutex.
func (m *Monitor) Unlock() { m.mu.Unlock() }

// AddAnalyzer registers a callback that contributes context lines to the
// deadlock report (e.g. the MPI matcher describing which ranks already
// finalized). Must be called before the run starts.
func (m *Monitor) AddAnalyzer(f func() []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.analyzer = append(m.analyzer, f)
}

// ThreadStarted registers a new live thread (lock taken internally).
func (m *Monitor) ThreadStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live++
}

// ThreadExited unregisters a live thread and re-checks for quiescence:
// a thread exiting while every other one is blocked is a deadlock (e.g. a
// process returning from main while its peers wait in a collective).
func (m *Monitor) ThreadExited() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.live--
	m.checkQuiescenceLocked()
}

// NewWaiterLocked registers the calling thread as blocked. The caller must
// hold the monitor lock, release it, then Await outside the lock.
func (m *Monitor) NewWaiterLocked(reason, detail string) *Waiter {
	w := &Waiter{Reason: reason, Detail: detail, ch: make(chan struct{}, 1)}
	if m.aborted.Load() {
		// The run already failed; never park new arrivals.
		w.err = m.err
		w.ch <- struct{}{}
		return w
	}
	m.waiters[w] = true
	m.blocked++
	m.checkQuiescenceLocked()
	return w
}

// WakeLocked releases a waiter. Wakes are precise: the waker has already
// established the condition the waiter was blocked on. The caller must
// hold the monitor lock.
func (m *Monitor) WakeLocked(w *Waiter) {
	if !m.waiters[w] {
		return
	}
	delete(m.waiters, w)
	m.blocked--
	w.err = m.err
	w.ch <- struct{}{}
}

// Await blocks until woken or aborted, returning the abort error if the
// run failed. Must be called without the lock held.
func (w *Waiter) Await() error {
	<-w.ch
	return w.err
}

// Abort fails the run: the first error wins, every current waiter is woken
// with it, and Aborted flips so running threads stop at their next check.
func (m *Monitor) Abort(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.AbortLocked(err)
}

// AbortLocked is Abort for callers already holding the lock.
func (m *Monitor) AbortLocked(err error) {
	if m.aborted.Load() {
		return
	}
	m.err = err
	m.aborted.Store(true)
	for w := range m.waiters {
		delete(m.waiters, w)
		m.blocked--
		w.err = err
		w.ch <- struct{}{}
	}
}

// Aborted reports whether the run failed; lock-free so interpreters can
// poll it on every statement.
func (m *Monitor) Aborted() bool { return m.aborted.Load() }

// Err returns the abort error, if any.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// ErrLocked is Err for callers already holding the (non-reentrant) lock.
func (m *Monitor) ErrLocked() error { return m.err }

// Stats reports the current liveness counters (for tests).
func (m *Monitor) Stats() (live, blocked int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live, m.blocked
}

// checkQuiescenceLocked fires the deadlock detection: every live thread is
// blocked, so nothing can ever wake them.
func (m *Monitor) checkQuiescenceLocked() {
	if m.aborted.Load() || m.live == 0 || m.blocked != m.live {
		return
	}
	var lines []string
	for w := range m.waiters {
		lines = append(lines, fmt.Sprintf("  %s: %s", w.Reason, w.Detail))
	}
	sort.Strings(lines)
	for _, f := range m.analyzer {
		for _, l := range f() {
			lines = append(lines, "  "+l)
		}
	}
	m.AbortLocked(&DeadlockError{Details: lines})
}

// IsDeadlock reports whether err is (or wraps) the monitor's deadlock
// report — the oracle outcome the validation layers must preempt.
func IsDeadlock(err error) bool {
	var de *DeadlockError
	return errors.As(err, &de)
}

// DeadlockError reports that every live thread was blocked.
type DeadlockError struct {
	Details []string
}

// Error renders the full report.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	b.WriteString("deadlock: every live thread is blocked")
	if len(e.Details) > 0 {
		b.WriteString("\n")
		b.WriteString(strings.Join(e.Details, "\n"))
	}
	return b.String()
}
