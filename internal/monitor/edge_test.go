package monitor

import "testing"

// edgeSigs analyzes a trace and collects its edge signatures.
func edgeSigs(t *EventTrace) []uint64 {
	var an Analysis
	an.Analyze(t)
	var out []uint64
	an.EdgeSignatures(t, func(k uint64) { out = append(out, k) })
	return out
}

// TestEdgeSignatureDeterministic pins the campaign coverage contract:
// analyzing byte-identical traces yields byte-identical edge-signature
// sequences, including through Analysis buffer reuse.
func TestEdgeSignatureDeterministic(t *testing.T) {
	cellX := ObjID(1, 0, 0)
	events := []traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
		{thread: 1, branch: 1, accs: []Access{rd(cellX)}},
		{thread: 0, branch: 2, accs: []Access{wr(cellX)}},
	}
	a := edgeSigs(buildTrace(events))
	if len(a) == 0 {
		t.Fatal("expected at least one race-pair edge signature")
	}
	b := edgeSigs(buildTrace(events))
	if len(a) != len(b) {
		t.Fatalf("identical traces: %d vs %d signatures", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical traces diverge at signature %d: %#x vs %#x", i, a[i], b[i])
		}
	}
	// Reuse one Analysis across both traces (the campaign's pooled use).
	var an Analysis
	an.Analyze(buildTrace(events))
	var c []uint64
	an.EdgeSignatures(buildTrace(events), func(k uint64) { c = append(c, k) })
	if len(c) != len(a) || c[0] != a[0] {
		t.Fatalf("reused Analysis diverges: %v vs %v", c, a)
	}
}

// TestEdgeSignatureDistinguishesReversal: the same conflicting pair of
// accesses observed in the opposite order is a different dependence
// shape — the whole point of using edges as a coverage signal is that
// reaching the reversal counts as new behavior.
func TestEdgeSignatureDistinguishesReversal(t *testing.T) {
	cellX := ObjID(1, 0, 0)
	fwd := edgeSigs(buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
		{thread: 1, branch: 1, accs: []Access{wr(cellX)}},
	}))
	rev := edgeSigs(buildTrace([]traceEvent{
		{thread: 1, branch: 0, accs: []Access{wr(cellX)}},
		{thread: 0, branch: 1, accs: []Access{wr(cellX)}},
	}))
	if len(fwd) != 1 || len(rev) != 1 {
		t.Fatalf("expected one race pair each, got %d and %d", len(fwd), len(rev))
	}
	if fwd[0] == rev[0] {
		t.Fatalf("reversed race pair must yield a distinct signature, both %#x", fwd[0])
	}
}

// TestEdgeSignatureShapeInvariance: the signature abstracts absolute
// trace positions — padding the trace with unrelated events of the same
// threads shifts every absolute index but, as long as the per-thread
// ordinals of the conflicting steps move together, distinct conflicts
// keep distinct signatures and repeated shapes collide.
func TestEdgeSignatureShapeInvariance(t *testing.T) {
	cellX, cellY := ObjID(1, 0, 0), ObjID(1, 0, 1)
	// Two structurally identical conflicts on different objects at the
	// same per-thread ordinals must collide (the shape ignores the
	// object), while the same conflict at different ordinals must not.
	sameShape := edgeSigs(buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
		{thread: 1, branch: 1, accs: []Access{wr(cellX)}},
	}))
	otherObj := edgeSigs(buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(cellY)}},
		{thread: 1, branch: 1, accs: []Access{wr(cellY)}},
	}))
	if len(sameShape) != 1 || len(otherObj) != 1 || sameShape[0] != otherObj[0] {
		t.Fatalf("same shape on a different object should collide: %v vs %v", sameShape, otherObj)
	}
	shifted := edgeSigs(buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: nil}, // unrelated step shifts thread 0's ordinals
		{thread: 0, branch: 1, accs: []Access{wr(cellX)}},
		{thread: 1, branch: 2, accs: []Access{wr(cellX)}},
	}))
	if len(shifted) != 1 || shifted[0] == sameShape[0] {
		t.Fatalf("shifted per-thread ordinal should change the signature: %v vs %v", shifted, sameShape)
	}
}
