package monitor

import "testing"

// Verifies whether Analysis reuse poisons same-event release/acquire:
// an event that acquires an object it released in the same event joins
// its OWN clock row, which is stale data from the previous Analyze.
func TestStaleClockSameEventRelAcq(t *testing.T) {
	o := ObjID(1, 1, 1)
	x := ObjID(2, 2, 2)

	var a Analysis

	// Run 1: poison clocks row 0 with a thread-1 component.
	var t1 EventTrace
	t1.Reset()
	t1.Open(1, -1) // event 0 by thread 1 -> clock row 0 = [0,1]
	t1.Append([]Access{{Obj: x, Kind: AccWrite}})
	t1.Open(0, -1)
	t1.Append([]Access{{Obj: x, Kind: AccWrite}})
	a.Analyze(&t1)

	// Run 2: event 0 (thread 0) releases AND acquires o in the same
	// event (barrier last-arriver shape); event 1 (thread 1) writes Y;
	// event 2 (thread 0) reads Y -> must be a race (no HB edge).
	y := ObjID(3, 3, 3)
	var t2 EventTrace
	t2.Reset()
	t2.Open(0, -1)
	t2.Append([]Access{{Obj: o, Kind: AccRelease}, {Obj: o, Kind: AccAcquire}})
	t2.Open(1, 0)
	t2.Append([]Access{{Obj: y, Kind: AccWrite}})
	t2.Open(0, 1)
	t2.Append([]Access{{Obj: y, Kind: AccRead}})
	a.Analyze(&t2)

	found := false
	for _, rc := range a.Races() {
		if rc.A == 1 && rc.B == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("race (1,2) on y missed: races=%v (stale clock row joined by same-event self-acquire)", a.Races())
	}

	// Control: fresh Analysis on the same trace.
	var b Analysis
	b.Analyze(&t2)
	found = false
	for _, rc := range b.Races() {
		if rc.A == 1 && rc.B == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("control failed: fresh Analysis also missed the race: %v", b.Races())
	}
}
