// Happens-before layer for dynamic partial-order reduction.
//
// Under a scheduling controller (internal/sched) a run is a sequence of
// *events*: the interval between two consecutive scheduling decisions,
// executed entirely by the one thread the scheduler chose. The
// interpreter tags each event with the shared objects it touches — cell
// reads/writes, MPI call slots, election and lock-queue slots — and this
// file turns the tagged trace into the two relations DPOR needs:
//
//   - happens-before: the transitive closure of per-thread program order,
//     conflicting-access order (Mazurkiewicz dependence) and explicit
//     release/acquire synchronization edges, computed with one vector
//     clock per thread;
//   - race pairs: conflicting accesses by different threads that are NOT
//     ordered by everything else — exactly the adjacent event pairs whose
//     reversal can reach a different program state, i.e. the only
//     decision reversals the exploration engine has to schedule.
//
// Two adjacent events commute iff no object conflicts, so a trace with
// no race pairs proves the whole interleaving class has been covered by
// this single run.
//
// The monitor owns this layer (rather than sched) because object
// identity is a runtime notion: the runtimes and the interpreter know
// what a step touched, the scheduler only knows who ran. Everything here
// is plain data — no locks; the controller appends under its own mutex
// and analysis runs after the run completes.
package monitor

import "encoding/binary"

// Obj identifies one shared object within a single run. Interpreters
// derive ids from addresses and composite keys via Mix/ObjID; a
// collision merely merges two objects into one conflict class, which
// over-approximates the dependence relation and is therefore always
// sound (it can add explored schedules, never hide one).
type Obj uint64

// AccessKind classifies how an event touched an object.
type AccessKind uint8

// Access kinds. Read/Write participate in conflict (race) detection;
// Acquire/Release only contribute happens-before edges — they model
// blocking synchronization whose order is enforced by enabledness (a
// barrier resume cannot be scheduled before the arrivals that released
// it), so reversing them is not a reachable schedule and they must not
// spawn backtrack points.
const (
	// AccRead is a conflict-visible read.
	AccRead AccessKind = iota
	// AccWrite is a conflict-visible write: it conflicts with reads and
	// writes of the same object by other threads.
	AccWrite
	// AccRelease publishes the current thread's history on the object.
	AccRelease
	// AccAcquire joins the last Release of the object into the current
	// thread's clock.
	AccAcquire
)

// Access is one tagged object access.
type Access struct {
	Obj  Obj
	Kind AccessKind
}

// Mix spreads a raw identity (typically an address) over the full Obj
// space with a splitmix64 round.
func Mix(z uint64) Obj {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return Obj(z ^ z>>31)
}

// ObjID builds a composite object id from a kind tag and two key parts.
func ObjID(kind, a, b uint64) Obj {
	return Mix(uint64(Mix(uint64(Mix(kind))+a)) + b)
}

// Event is one scheduled step: everything thread Thread executed between
// being granted the run token and the next scheduling decision.
type Event struct {
	// Thread is the sched.ThreadID that ran.
	Thread int32
	// Branch is the index of the decision that started this event in the
	// run's branch-point sequence (sched.Recorder.Branches), or -1 when
	// the decision was forced (a single enabled thread): a forced
	// decision has no alternative, so it can never host a backtrack.
	Branch int32
	lo, hi int32
}

// DefaultTraceLimit bounds recorded events per run. Runs that overrun it
// (step-budget-bound spins) keep their prefix and set Overflowed; the
// exploration engine falls back to plain DFS enumeration for such runs,
// which is sound and no worse than DFS was.
const DefaultTraceLimit = 1 << 17

// EventTrace accumulates one run's tagged events. The scheduling
// controller appends under its own lock; analysis happens after the run.
type EventTrace struct {
	events   []Event
	acc      []Access
	limit    int
	overflow bool
}

// Reset clears the trace for a new run, keeping capacity.
func (t *EventTrace) Reset() {
	t.events = t.events[:0]
	t.acc = t.acc[:0]
	t.overflow = false
	if t.limit == 0 {
		t.limit = DefaultTraceLimit
	}
}

// SetLimit overrides the recorded-event bound (0 restores the default).
func (t *EventTrace) SetLimit(n int) {
	if n <= 0 {
		n = DefaultTraceLimit
	}
	t.limit = n
}

// Open starts a new event for thread; branch is the branch-point index
// of the decision that granted it (-1 for forced decisions).
func (t *EventTrace) Open(thread, branch int) {
	if t.limit == 0 {
		t.limit = DefaultTraceLimit
	}
	if len(t.events) >= t.limit {
		t.overflow = true
		return
	}
	n := int32(len(t.acc))
	t.events = append(t.events, Event{Thread: int32(thread), Branch: int32(branch), lo: n, hi: n})
}

// Append adds accesses to the currently open (most recent) event.
func (t *EventTrace) Append(accs []Access) {
	if len(accs) == 0 || len(t.events) == 0 || t.overflow {
		return
	}
	t.acc = append(t.acc, accs...)
	t.events[len(t.events)-1].hi = int32(len(t.acc))
}

// Len returns the number of recorded events.
func (t *EventTrace) Len() int { return len(t.events) }

// At returns the i-th event's thread and branch index.
func (t *EventTrace) At(i int) (thread, branch int) {
	e := &t.events[i]
	return int(e.Thread), int(e.Branch)
}

// Accesses returns the i-th event's access list (valid until Reset).
func (t *EventTrace) Accesses(i int) []Access {
	e := &t.events[i]
	return t.acc[e.lo:e.hi]
}

// Overflowed reports whether events were dropped at the trace limit.
func (t *EventTrace) Overflowed() bool { return t.overflow }

// Race is one pair of conflicting, happens-before-unordered events
// (A < B in trace order, different threads). Reversing B's thread to run
// at A's decision point is exactly the schedule perturbation DPOR must
// explore; everything else commutes.
type Race struct {
	A, B int
}

// objState tracks the last conflict-visible accesses of one object.
type objState struct {
	lastW   int32
	lastRel int32
	// readers holds, per reading thread since the last write, that
	// thread's latest read event (threads are few; linear scan wins).
	readers []int32
}

// Analysis holds the vector clocks, race pairs and per-thread event
// index of one analyzed trace. Reused across runs via Analyze.
type Analysis struct {
	threads int
	stride  int
	clocks  []uint32 // event i's clock at clocks[i*stride : (i+1)*stride]
	cur     []uint32 // scratch: per-thread current clock
	races   []Race
	// byThread lists event indices per thread, in trace order (sorted).
	byThread [][]int32
	objs     map[Obj]*objState
	freeObj  []*objState
}

func (a *Analysis) clockOf(ev int) []uint32 { return a.clocks[ev*a.stride : (ev+1)*a.stride] }

func joinClock(dst, src []uint32) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

func (a *Analysis) getObj(o Obj) *objState {
	st := a.objs[o]
	if st == nil {
		if n := len(a.freeObj); n > 0 {
			st = a.freeObj[n-1]
			a.freeObj = a.freeObj[:n-1]
			st.lastW, st.lastRel = -1, -1
			st.readers = st.readers[:0]
		} else {
			st = &objState{lastW: -1, lastRel: -1}
		}
		a.objs[o] = st
	}
	return st
}

func (a *Analysis) addRace(x, y int) {
	if n := len(a.races); n > 0 && a.races[n-1] == (Race{x, y}) {
		return // same pair re-detected through a second access of y
	}
	a.races = append(a.races, Race{x, y})
}

// Analyze computes vector clocks and race pairs for t, reusing a's
// buffers. Happens-before is the transitive closure of program order,
// conflicting-access order and release/acquire edges; a race is reported
// for each pair of conflicting accesses by different threads that no
// *other* edge already orders (the classic FastTrack check: the prior
// access's own clock component exceeds the current thread's view of it).
func (a *Analysis) Analyze(t *EventTrace) {
	n := t.Len()
	threads := 0
	for i := 0; i < n; i++ {
		th, _ := t.At(i)
		if th+1 > threads {
			threads = th + 1
		}
	}
	a.threads = threads
	a.stride = threads
	a.races = a.races[:0]
	if cap(a.byThread) < threads {
		a.byThread = make([][]int32, threads)
	}
	a.byThread = a.byThread[:threads]
	for i := range a.byThread {
		a.byThread[i] = a.byThread[i][:0]
	}
	if a.objs == nil {
		a.objs = make(map[Obj]*objState)
	} else {
		for o, st := range a.objs {
			a.freeObj = append(a.freeObj, st)
			delete(a.objs, o)
		}
	}
	need := n * a.stride
	if cap(a.clocks) < need {
		a.clocks = make([]uint32, need)
	}
	a.clocks = a.clocks[:need]
	curNeed := threads * a.stride
	if cap(a.cur) < curNeed {
		a.cur = make([]uint32, curNeed)
	}
	a.cur = a.cur[:curNeed]
	for i := range a.cur {
		a.cur[i] = 0
	}

	// Within the loop, clockOf(j) may only be consulted for j < i: event
	// i's own row is not written until the end of its iteration, and on a
	// reused Analysis it still holds the previous trace's clocks. A prior
	// access index equal to i arises when one event touches the same
	// object twice (a read-modify-write between two scheduling decisions)
	// — same thread, so there is nothing to order or report anyway.
	for i := 0; i < n; i++ {
		tid, _ := t.At(i)
		cur := a.cur[tid*a.stride : (tid+1)*a.stride]
		cur[tid]++ // this event is one step of tid
		for _, acc := range t.Accesses(i) {
			st := a.getObj(acc.Obj)
			switch acc.Kind {
			case AccRelease:
				st.lastRel = int32(i)
			case AccAcquire:
				if st.lastRel >= 0 && int(st.lastRel) != i {
					joinClock(cur, a.clockOf(int(st.lastRel)))
				}
			case AccRead:
				if w := st.lastW; w >= 0 && int(w) != i {
					wt, _ := t.At(int(w))
					if wt != tid && a.clockOf(int(w))[wt] > cur[wt] {
						a.addRace(int(w), i)
					}
					joinClock(cur, a.clockOf(int(w)))
				}
				// Record (or refresh) this thread's read.
				found := false
				for ri, r := range st.readers {
					rt, _ := t.At(int(r))
					if rt == tid {
						st.readers[ri] = int32(i)
						found = true
						break
					}
				}
				if !found {
					st.readers = append(st.readers, int32(i))
				}
			case AccWrite:
				if w := st.lastW; w >= 0 && int(w) != i {
					wt, _ := t.At(int(w))
					if wt != tid && a.clockOf(int(w))[wt] > cur[wt] {
						a.addRace(int(w), i)
					}
					joinClock(cur, a.clockOf(int(w)))
				}
				for _, r := range st.readers {
					if int(r) == i {
						continue
					}
					rt, _ := t.At(int(r))
					if rt != tid && a.clockOf(int(r))[rt] > cur[rt] {
						a.addRace(int(r), i)
					}
					joinClock(cur, a.clockOf(int(r)))
				}
				st.readers = st.readers[:0]
				st.lastW = int32(i)
			}
		}
		copy(a.clockOf(i), cur)
		a.byThread[tid] = append(a.byThread[tid], int32(i))
	}
}

// Races returns the race pairs in trace order of their second event
// (valid until the next Analyze).
func (a *Analysis) Races() []Race { return a.races }

// Threads returns the number of threads the analyzed trace used.
func (a *Analysis) Threads() int { return a.threads }

// HappensBefore reports whether event i happens-before event j (true
// for i == j). Both must be valid indices of the analyzed trace.
func (a *Analysis) HappensBefore(i, j int, t *EventTrace) bool {
	ti, _ := t.At(i)
	return a.clockOf(i)[ti] <= a.clockOf(j)[ti]
}

// threadOrdinal returns the 0-based position of event ev within its own
// thread's event sequence. ev must be an event of the analyzed trace.
func (a *Analysis) threadOrdinal(thread, ev int) int {
	evs := a.byThread[thread]
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(evs[mid]) < ev {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// EdgeSignature folds one race pair into a dependence-edge shape key: a
// hash over (thread of A, A's ordinal within that thread, thread of B,
// B's ordinal within that thread). The shape abstracts away absolute
// trace positions — two runs whose threads interleave the same
// conflicting steps in the same per-thread order produce the same
// signature — while a reversed pair (the same conflict observed in the
// opposite order) hashes the roles swapped and therefore yields a
// distinct key. This is the monitor-level component of the campaign
// engine's coverage signal (internal/campaign): a new edge shape means
// the schedule reached a dependence the corpus had not yet witnessed.
func (a *Analysis) EdgeSignature(rc Race, t *EventTrace) uint64 {
	ta, _ := t.At(rc.A)
	tb, _ := t.At(rc.B)
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(ta))
	binary.LittleEndian.PutUint64(buf[8:], uint64(a.threadOrdinal(ta, rc.A)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(tb))
	binary.LittleEndian.PutUint64(buf[24:], uint64(a.threadOrdinal(tb, rc.B)))
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// EdgeSignatures emits the edge signature of every race pair of the
// analyzed trace, in trace order. Identical traces emit identical
// sequences; the emit function typically feeds a coverage set.
func (a *Analysis) EdgeSignatures(t *EventTrace, emit func(uint64)) {
	for _, rc := range a.races {
		emit(a.EdgeSignature(rc, t))
	}
}

// NextEventOf returns the first event of thread strictly after trace
// index after, or -1. This is the per-thread "next access summary" at a
// decision point: the step thread would take if scheduled there.
func (a *Analysis) NextEventOf(thread, after int) int {
	if thread < 0 || thread >= len(a.byThread) {
		return -1
	}
	evs := a.byThread[thread]
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(evs[mid]) <= after {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(evs) {
		return -1
	}
	return int(evs[lo])
}
