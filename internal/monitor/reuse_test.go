package monitor

import "testing"

func TestEdgeSignatureReuseAcrossDifferentTraces(t *testing.T) {
	cellX, cellY := ObjID(1, 0, 0), ObjID(1, 0, 1)
	big := buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(cellX), wr(cellY)}},
		{thread: 1, branch: 1, accs: []Access{rd(cellX), wr(cellY)}},
		{thread: 2, branch: 2, accs: []Access{wr(cellX)}},
		{thread: 0, branch: 3, accs: []Access{wr(cellY)}},
	})
	small := buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
		{thread: 1, branch: 1, accs: []Access{wr(cellX)}},
	})
	fresh := edgeSigs(small)
	var an Analysis
	an.Analyze(big)
	an.Analyze(small)
	var reused []uint64
	an.EdgeSignatures(small, func(k uint64) { reused = append(reused, k) })
	if len(fresh) != len(reused) {
		t.Fatalf("reused Analysis yields %d sigs vs fresh %d", len(reused), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("sig %d differs: fresh %#x reused %#x", i, fresh[i], reused[i])
		}
	}
}

// TestAnalyzeReuseAfterSameEventRMW pins the self-reference rule: when
// one event touches the same object twice (a read-modify-write between
// two scheduling decisions), the prior-access index equals the current
// event, whose clock row is not written yet. On a reused Analysis that
// row still holds the previous trace's clocks — joining it inflated the
// thread's clock and silently suppressed later race reports, making
// race sets (and every coverage signal built on them) depend on which
// trace the Analysis happened to see before.
func TestAnalyzeReuseAfterSameEventRMW(t *testing.T) {
	objW, objX, objY := ObjID(1, 0, 0), ObjID(1, 0, 1), ObjID(1, 0, 2)
	// A single-threaded warm-up trace leaves monotonically growing
	// clock rows behind (stride 1, reinterpreted at stride 2 below).
	var warm []traceEvent
	for i := 0; i < 6; i++ {
		warm = append(warm, traceEvent{thread: 0, branch: i, accs: []Access{wr(objW)}})
	}
	prev := buildTrace(warm)
	rmw := buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(objX)}},
		{thread: 1, branch: 1, accs: []Access{rd(objY), wr(objY)}},
		{thread: 1, branch: 2, accs: []Access{rd(objX)}},
	})
	var fresh Analysis
	fresh.Analyze(rmw)
	want := append([]Race(nil), fresh.Races()...)
	if len(want) != 1 || want[0] != (Race{0, 2}) {
		t.Fatalf("fresh analysis: races = %v, want [{0 2}]", want)
	}
	var an Analysis
	an.Analyze(prev)
	an.Analyze(rmw)
	got := an.Races()
	if len(got) != len(want) {
		t.Fatalf("reused analysis: races = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused analysis: races = %v, want %v", got, want)
		}
	}
}
