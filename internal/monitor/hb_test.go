package monitor

import "testing"

// traceEvent is the test-side shorthand for building event traces.
type traceEvent struct {
	thread int
	branch int
	accs   []Access
}

func buildTrace(events []traceEvent) *EventTrace {
	t := &EventTrace{}
	t.Reset()
	for _, e := range events {
		t.Open(e.thread, e.branch)
		t.Append(e.accs)
	}
	return t
}

func rd(o Obj) Access  { return Access{Obj: o, Kind: AccRead} }
func wr(o Obj) Access  { return Access{Obj: o, Kind: AccWrite} }
func rel(o Obj) Access { return Access{Obj: o, Kind: AccRelease} }
func acq(o Obj) Access { return Access{Obj: o, Kind: AccAcquire} }

func TestAnalyzeConflicts(t *testing.T) {
	cellX, cellY := ObjID(1, 0, 0), ObjID(1, 0, 1)
	lockQ := ObjID(5, 0, 0) // critical-section acquisition queue slot
	lockH := ObjID(5, 0, 1) // critical-section handoff (release/acquire)
	coll0 := ObjID(2, 0, 0) // rank 0's MPI call slot
	coll1 := ObjID(2, 1, 0) // rank 1's MPI call slot
	barA0 := ObjID(4, 0, 0) // barrier arrival slots, one per thread
	barA1 := ObjID(4, 0, 1)

	cases := []struct {
		name   string
		events []traceEvent
		want   []Race
	}{
		{
			name: "disjoint cells commute",
			events: []traceEvent{
				{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
				{thread: 1, branch: 1, accs: []Access{wr(cellY)}},
				{thread: 0, branch: 2, accs: []Access{rd(cellX)}},
				{thread: 1, branch: 3, accs: []Access{rd(cellY)}},
			},
			want: nil,
		},
		{
			name: "write/write on one cell conflicts",
			events: []traceEvent{
				{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
				{thread: 1, branch: 1, accs: []Access{wr(cellX)}},
			},
			want: []Race{{0, 1}},
		},
		{
			name: "read/write conflicts both directions",
			events: []traceEvent{
				{thread: 0, branch: 0, accs: []Access{rd(cellX)}},
				{thread: 1, branch: 1, accs: []Access{wr(cellX)}},
				{thread: 0, branch: 2, accs: []Access{rd(cellX)}},
			},
			// Both pairs race: nothing except the conflict edges
			// themselves orders t0's reads against t1's write, and
			// reversing either pair reaches a different schedule.
			want: []Race{{0, 1}, {1, 2}},
		},
		{
			name: "same thread never races itself",
			events: []traceEvent{
				{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
				{thread: 0, branch: -1, accs: []Access{wr(cellX), rd(cellX)}},
			},
			want: nil,
		},
		{
			name: "gate reacquisition: attempts conflict, handoff does not",
			events: []traceEvent{
				// t0 attempts and acquires the lock, runs, releases.
				{thread: 0, branch: 0, accs: []Access{wr(lockQ), acq(lockH)}},
				{thread: 0, branch: -1, accs: []Access{wr(cellX)}},
				{thread: 0, branch: 1, accs: []Access{rel(lockH)}},
				// t1 attempts (conflicts with t0's attempt — lock order is
				// schedule-dependent) and acquires after the handoff; its
				// body read is then ordered behind t0's body write.
				{thread: 1, branch: 2, accs: []Access{wr(lockQ), acq(lockH)}},
				{thread: 1, branch: -1, accs: []Access{rd(cellX)}},
			},
			want: []Race{{0, 3}},
		},
		{
			name: "collective arrivals on different ranks commute",
			events: []traceEvent{
				// Two ranks enter a collective: each writes only its own
				// per-rank call slot, so arrival order never conflicts.
				{thread: 0, branch: 0, accs: []Access{wr(coll0)}},
				{thread: 1, branch: 1, accs: []Access{wr(coll1)}},
				{thread: 0, branch: 2, accs: []Access{rd(coll0)}},
				{thread: 1, branch: 3, accs: []Access{rd(coll1)}},
			},
			want: nil,
		},
		{
			name: "same-rank concurrent MPI calls conflict",
			events: []traceEvent{
				{thread: 0, branch: 0, accs: []Access{wr(coll0)}},
				{thread: 2, branch: 1, accs: []Access{wr(coll0)}},
			},
			want: []Race{{0, 1}},
		},
		{
			name: "closing barrier orders post-barrier accesses",
			events: []traceEvent{
				{thread: 0, branch: 0, accs: []Access{wr(cellX), rel(barA0)}},
				{thread: 1, branch: 1, accs: []Access{rel(barA1)}},
				// After the barrier each thread acquires every arrival
				// slot, so t1's read of x is ordered behind t0's write.
				{thread: 1, branch: 2, accs: []Access{acq(barA0), acq(barA1), rd(cellX)}},
				{thread: 0, branch: 3, accs: []Access{acq(barA0), acq(barA1)}},
			},
			want: nil,
		},
		{
			name: "without the barrier the same accesses race",
			events: []traceEvent{
				{thread: 0, branch: 0, accs: []Access{wr(cellX)}},
				{thread: 1, branch: 1, accs: []Access{rd(cellX)}},
			},
			want: []Race{{0, 1}},
		},
	}

	var a Analysis // reused across cases: Analyze must fully reset
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildTrace(tc.events)
			a.Analyze(tr)
			got := a.Races()
			if len(got) != len(tc.want) {
				t.Fatalf("races = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("races = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestAnalyzeHappensBefore(t *testing.T) {
	x, h := ObjID(1, 0, 0), ObjID(9, 0, 0)
	tr := buildTrace([]traceEvent{
		{thread: 0, branch: 0, accs: []Access{wr(x), rel(h)}},
		{thread: 1, branch: 1, accs: []Access{acq(h)}},
		{thread: 1, branch: -1, accs: []Access{wr(x)}},
		{thread: 2, branch: 2, accs: []Access{wr(x)}},
	})
	var a Analysis
	a.Analyze(tr)
	if !a.HappensBefore(0, 1, tr) || !a.HappensBefore(0, 2, tr) {
		t.Fatal("release/acquire edge missing from happens-before")
	}
	if a.HappensBefore(1, 0, tr) {
		t.Fatal("happens-before must not be symmetric")
	}
	if !a.HappensBefore(1, 2, tr) {
		t.Fatal("program order missing from happens-before")
	}
	if !a.HappensBefore(2, 2, tr) {
		t.Fatal("happens-before must be reflexive")
	}
	// t2's write races t1's write (nothing orders them) but is ordered
	// after t0's write only through that conflict edge, so the race list
	// holds exactly the (2,3) pair — plus (0,3) unless the chain through
	// the joins ordered it: t0's write joined into t1's clock via acquire,
	// and t2 joins t1's write on its own conflict check, so (0,3) is
	// ordered at detection time through lastW being event 2.
	races := a.Races()
	if len(races) != 1 || races[0] != (Race{2, 3}) {
		t.Fatalf("races = %v, want [{2 3}]", races)
	}
	// Next-access summaries: t1's first event after index 0 is event 1.
	if got := a.NextEventOf(1, 0); got != 1 {
		t.Fatalf("NextEventOf(1, 0) = %d, want 1", got)
	}
	if got := a.NextEventOf(1, 2); got != -1 {
		t.Fatalf("NextEventOf(1, 2) = %d, want -1", got)
	}
	if got := a.NextEventOf(0, 0); got != -1 {
		t.Fatalf("NextEventOf(0, 0) = %d, want -1", got)
	}
}

func TestEventTraceOverflow(t *testing.T) {
	tr := &EventTrace{}
	tr.Reset()
	tr.SetLimit(4)
	for i := 0; i < 10; i++ {
		tr.Open(0, i)
		tr.Append([]Access{wr(ObjID(1, 0, uint64(i)))})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (limit)", tr.Len())
	}
	if !tr.Overflowed() {
		t.Fatal("Overflowed = false, want true")
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Overflowed() {
		t.Fatal("Reset must clear events and the overflow flag")
	}
}
