package campaign

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"parcoach/internal/interp"
	"parcoach/internal/mhgen"
	"parcoach/internal/sched"
	"parcoach/internal/verifier"
)

// Point is one round of the coverage-vs-budget trajectory.
type Point struct {
	Round    int `json:"round"`
	Runs     int `json:"runs"`     // cumulative schedules executed
	Coverage int `json:"coverage"` // distinct coverage keys so far
	Bugs     int `json:"bugs"`     // corpus entries with their planted bug caught
}

// CorpusEntry is one committed corpus member.
type CorpusEntry struct {
	Name    string `json:"name"`
	Seed    uint64 `json:"seed"`
	Bug     string `json:"bug"`
	Size    string `json:"size"`
	Origin  string `json:"origin"` // "seed" or "mutant"
	Procs   int    `json:"procs"`
	Threads int    `json:"threads"`
	Runs    int    `json:"runs"`
	Yield   int    `json:"yield"` // total novel coverage keys contributed
	Retired bool   `json:"retired,omitempty"`
	// FailToken is the replay token of the first schedule a planted
	// check or the value oracle stopped ("" if never detected).
	FailToken string `json:"fail_token,omitempty"`
	// Source is the program text — for mutants the (possibly reduced)
	// reproducer; seed entries are addressable by Seed and omit it.
	Source string `json:"source,omitempty"`
}

// Report is the campaign's result.
type Report struct {
	Seed    uint64 `json:"seed"`
	Budget  int    `json:"budget"`
	Runs    int    `json:"runs"`
	Uniform bool   `json:"uniform"`

	Coverage    int `json:"coverage"`
	SigKeys     int `json:"sig_keys"`
	VerdictKeys int `json:"verdict_keys"`
	EdgeKeys    int `json:"edge_keys"`
	StaticKeys  int `json:"static_keys"`

	// Bugs lists the caught planted bugs of the seed corpus (static or
	// dynamic), sorted — the set the bench compares between campaign
	// and linear sweep. MutantBugs lists catches in mutated programs.
	Bugs       []string `json:"bugs"`
	MutantBugs []string `json:"mutant_bugs,omitempty"`

	Mutants int `json:"mutants"`
	Retired int `json:"retired"`

	// Canceled marks a campaign stopped by Options.Ctx: the report
	// reduces only the rounds that completed before the cancellation.
	Canceled bool `json:"canceled,omitempty"`
	// Quarantined counts runs whose panic was caught at the job boundary
	// (OutcomeInternalError); their entries were retired.
	Quarantined int `json:"quarantined,omitempty"`

	Trajectory []Point       `json:"trajectory"`
	Corpus     []CorpusEntry `json:"corpus"`
}

// report commits the corpus (reducing mutant reproducers unless
// disabled) and assembles the final report.
func (c *state) report() *Report {
	r := &Report{
		Seed:        c.opts.Seed,
		Budget:      c.opts.Budget,
		Runs:        c.runs,
		Uniform:     c.opts.Uniform,
		Coverage:    c.cover.Len(),
		SigKeys:     c.sigKeys,
		VerdictKeys: c.verdictKey,
		EdgeKeys:    c.edgeKeys,
		StaticKeys:  c.staticKeys,
		Mutants:     c.mutants,
		Canceled:    c.canceled,
		Quarantined: c.quarantined,
		Trajectory:  c.trajectory,
	}
	for _, e := range c.entries {
		if e.retired {
			r.Retired++
		}
		caught := e.gp.Bug.String() != "none" && (e.staticCaught || e.detected)
		if caught {
			if e.origin == "seed" {
				r.Bugs = append(r.Bugs, e.bugLabel())
			} else {
				r.MutantBugs = append(r.MutantBugs, e.bugLabel())
			}
		}
		ce := CorpusEntry{
			Name:      e.gp.Name,
			Seed:      e.gp.Seed,
			Bug:       e.gp.Bug.String(),
			Size:      e.gp.Size.String(),
			Origin:    e.origin,
			Procs:     e.gp.Procs,
			Threads:   e.gp.Threads,
			Runs:      e.runs,
			Yield:     e.totalYield,
			Retired:   e.retired,
			FailToken: e.failToken,
		}
		if e.origin != "seed" {
			src := e.gp.Source
			if e.detected && !c.opts.NoReduce {
				src = c.reduceMutant(e)
			}
			ce.Source = src
		}
		r.Corpus = append(r.Corpus, ce)
	}
	sort.Strings(r.Bugs)
	sort.Strings(r.MutantBugs)
	return r
}

// reduceMutant minimizes a detecting mutant before corpus commit: the
// smallest program that still compiles and whose recorded failing
// schedule still stops it with the same outcome class, replayed
// without divergence (mhgen.Reduce memoizes the keep predicate, and
// compilation goes through the campaign's — cached — compiler).
func (c *state) reduceMutant(e *entry) string {
	want := c.replayOutcome(e.gp, e.gp.Source, e.failToken)
	if want == interp.OutcomeClean {
		return e.gp.Source // token did not reproduce; keep the original
	}
	return mhgen.Reduce(e.gp.Source, func(src string) bool {
		return c.replayOutcome(e.gp, src, e.failToken) == want
	})
}

// replayOutcome compiles a source variant of gp and replays the exact
// schedule token, returning the outcome class (OutcomeClean for any
// failure to compile, parse the token, or replay without divergence).
func (c *state) replayOutcome(gp *mhgen.Program, src, token string) interp.Outcome {
	probe := *gp
	probe.Source = src
	comp, err := c.opts.Compile(&probe)
	if err != nil {
		return interp.OutcomeClean
	}
	s, err := sched.Parse(token)
	if err != nil {
		return interp.OutcomeClean
	}
	res := comp.Session.Run(s)
	if rp, ok := s.(*sched.Replay); ok && rp.Diverged() {
		return interp.OutcomeClean
	}
	out := res.Outcome()
	if out != interp.OutcomeCheckAbort && out != interp.OutcomeValueError {
		return interp.OutcomeClean
	}
	return out
}

// valueKindOf extracts the value-oracle check kind from a run error.
func valueKindOf(err error) string {
	var ve *verifier.ValueError
	if errors.As(err, &ve) {
		return ve.Check.String()
	}
	return ""
}

// Format renders the report as stable text — the byte-identity surface
// of the determinism contract (mutant sources are summarized by line
// count; the full text lives in the structured Corpus).
func (r *Report) Format() string {
	var b strings.Builder
	mode := "campaign"
	if r.Uniform {
		mode = "uniform"
	}
	fmt.Fprintf(&b, "%s seed=%d budget=%d runs=%d corpus=%d mutants=%d retired=%d\n",
		mode, r.Seed, r.Budget, r.Runs, len(r.Corpus), r.Mutants, r.Retired)
	fmt.Fprintf(&b, "coverage total=%d sig=%d verdict=%d edge=%d static=%d\n",
		r.Coverage, r.SigKeys, r.VerdictKeys, r.EdgeKeys, r.StaticKeys)
	// Robustness line only when something robustness-worthy happened, so
	// clean runs keep their exact historical rendering (the byte-identity
	// surface of the determinism and checkpoint/resume contracts).
	if r.Canceled || r.Quarantined > 0 {
		fmt.Fprintf(&b, "robustness canceled=%t quarantined=%d\n", r.Canceled, r.Quarantined)
	}
	fmt.Fprintf(&b, "bugs caught=%d: %s\n", len(r.Bugs), strings.Join(r.Bugs, " "))
	if len(r.MutantBugs) > 0 {
		fmt.Fprintf(&b, "mutant bugs caught=%d: %s\n", len(r.MutantBugs), strings.Join(r.MutantBugs, " "))
	}
	b.WriteString("trajectory:\n")
	for _, p := range r.Trajectory {
		fmt.Fprintf(&b, "  round %-3d runs=%-6d coverage=%-6d bugs=%d\n", p.Round, p.Runs, p.Coverage, p.Bugs)
	}
	b.WriteString("corpus:\n")
	for _, e := range r.Corpus {
		fmt.Fprintf(&b, "  %-34s %-7s runs=%-4d yield=%-5d", e.Name, e.Origin, e.Runs, e.Yield)
		if e.Retired {
			b.WriteString(" retired")
		}
		if e.FailToken != "" {
			fmt.Fprintf(&b, " fail=%s", truncToken(e.FailToken))
		}
		if e.Source != "" {
			fmt.Fprintf(&b, " src=%d lines", strings.Count(e.Source, "\n")+1)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// truncToken shortens very long replay tokens for the rendered report
// (the full token stays in the structured corpus entry).
func truncToken(tok string) string {
	const max = 48
	if len(tok) <= max {
		return tok
	}
	return tok[:max] + "..."
}
