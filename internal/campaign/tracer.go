package campaign

import (
	"math/rand"

	"parcoach/internal/monitor"
	"parcoach/internal/sched"
)

// maxBranchRecord bounds how many branch points one run retains for
// coverage and splicing. Runs that branch beyond it (spinning
// schedules) still execute to their outcome; the tail is just not
// recorded — consistent with the event-trace limit below it.
const maxBranchRecord = 1 << 14

// branchRec is one recorded branch point: the positional state
// signature, the runnable set, and the pick.
type branchRec struct {
	sig     uint64
	enabled []sched.ThreadID
	chosen  sched.ThreadID
}

// tracer is the campaign's run scheduler: it follows an optional
// spliced prefix at branch points, continues with a seeded uniform
// random policy, and records what the coverage signal and the splicer
// need — every branch point (sig, enabled set, pick) and, via
// TraceSource, the run's happens-before event trace.
type tracer struct {
	prefix   []sched.ThreadID
	rng      *rand.Rand
	branches []branchRec
	nbranch  int // branch points seen, including beyond maxBranchRecord
	diverged bool
	events   monitor.EventTrace

	enabledBuf []sched.ThreadID
}

// reset rearms the tracer for a new run: follow prefix, then sample
// with the given seed.
func (t *tracer) reset(prefix []sched.ThreadID, seed int64) {
	t.prefix = prefix
	t.rng = rand.New(rand.NewSource(seed))
	t.branches = t.branches[:0]
	t.enabledBuf = t.enabledBuf[:0]
	t.nbranch = 0
	t.diverged = false
	t.events.Reset()
}

// EventTrace implements sched.TraceSource: the controller records one
// tagged event per decision.
func (t *tracer) EventTrace() *monitor.EventTrace { return &t.events }

// Next follows the prefix at branch points, records the branch, and
// picks uniformly beyond it.
func (t *tracer) Next(c sched.Choice) sched.ThreadID {
	if len(c.Enabled) == 1 {
		return c.Enabled[0]
	}
	pos := t.nbranch
	t.nbranch++
	var pick sched.ThreadID
	if pos < len(t.prefix) {
		rec := t.prefix[pos]
		found := false
		for _, id := range c.Enabled {
			if id == rec {
				found = true
				break
			}
		}
		if found {
			pick = rec
		} else {
			t.diverged = true
			pick = c.Enabled[0]
		}
	} else {
		pick = c.Enabled[t.rng.Intn(len(c.Enabled))]
	}
	if pos < maxBranchRecord {
		off := len(t.enabledBuf)
		t.enabledBuf = append(t.enabledBuf, c.Enabled...)
		t.branches = append(t.branches, branchRec{
			sig:     c.Sig,
			enabled: t.enabledBuf[off:len(t.enabledBuf):len(t.enabledBuf)],
			chosen:  pick,
		})
	}
	return pick
}

// trace returns the chosen thread at every recorded branch point — the
// replay-token payload of this run.
func (t *tracer) trace() []sched.ThreadID {
	out := make([]sched.ThreadID, len(t.branches))
	for i := range t.branches {
		out[i] = t.branches[i].chosen
	}
	return out
}
