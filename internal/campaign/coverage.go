package campaign

// Coverage keys. The campaign's composite coverage signal is a set of
// 64-bit keys accumulated in one campaign-global pipeline.ShardedSet;
// every key mixes a class tag, the owning program's source hash, and
// the class-specific payload, so the same behavior in two different
// programs counts twice (the corpus is program×schedule space) while
// the same behavior of one program never does.
//
// Classes:
//
//   - sig: a positional state signature at a genuine branch point
//     (sched.Choice.Sig) folded with the thread that was chosen there —
//     the same (state, decision) pair the DFS explorer prunes on. New
//     keys mean the schedule drove the threads somewhere no earlier
//     schedule of this program did.
//   - verdict: the run's outcome class (interp.Outcome), refined by the
//     value-oracle check kind for value errors. New keys mean a new way
//     for this program to pass or fail.
//   - edge: a happens-before dependency-edge shape of a racing access
//     pair (monitor.Analysis.EdgeSignature). New keys mean a new
//     ordering relationship between conflicting steps was observed.
//   - static: a compile-time warning kind, added once at corpus
//     admission (they cost no schedule budget).

// Key classes.
const (
	classSig uint64 = iota + 1
	classVerdict
	classEdge
	classStatic
)

// FNV-1a, the hash family used across the engine.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// fnvString hashes a string with FNV-1a.
func fnvString(s string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix folds v into h with a splitmix64 finalizer — the same
// construction internal/explore uses for its (state, decision) child
// keys, strong enough that set collisions are noise.
func mix(h, v uint64) uint64 {
	x := h ^ (v + 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// key builds a coverage key: class tag + program hash + payload.
func key(class, prog, payload uint64) uint64 {
	return mix(mix(prog, class), payload)
}
