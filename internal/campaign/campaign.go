// Package campaign is the corpus-driven exploration campaign engine:
// it runs many generated MiniHybrid programs (internal/mhgen) over one
// shared worker pool and allocates schedule budget by marginal
// coverage instead of uniformly.
//
// The campaign keeps a frontier of corpus entries scored by recent
// coverage yield: the number of novel coverage keys (see coverage.go)
// an entry's schedules produced in its last active round, per
// schedule. Each round, every entry gets a share of the per-round
// budget proportional to its rate relative to the round's best;
// entries whose share rounds to zero are parked, and after enough
// consecutive parked rounds they retire, their budget flowing to where
// coverage still grows. Two mutation channels grow the corpus: mhgen seed
// neighborhoods (rotated bug class, flipped size, displaced seed) for
// entries that yield, and schedule-prefix splicing — the decision
// prefix of a run that reached novel coverage is replayed with each
// untaken alternative at its deepest novel branch, the same child
// expansion the DFS/DPOR explorer performs, rooted at schedules that
// proved interesting. Committed mutant reproducers are minimized with
// mhgen.Reduce before they enter the final corpus.
//
// Determinism contract: a campaign is a pure function of its Options.
// Each round plans jobs in corpus order, runs them on the pool (runs
// are pure functions of (program, schedule seed, prefix)), and merges
// results serially in job order — every coverage-set update, mutation
// admission and splice decision happens in the merge, so reports are
// byte-identical at any worker count.
package campaign

import (
	"context"
	"fmt"
	"sort"

	"parcoach/internal/chaos"
	"parcoach/internal/interp"
	"parcoach/internal/mhgen"
	"parcoach/internal/pipeline"
	"parcoach/internal/sched"
)

// Compiled is what the injected compiler returns for one corpus entry:
// a reusable run session over the (instrumented) program and the
// static warning kinds of its compile-time verification. The session
// must be safe for concurrent Run calls, as parcoach sessions are.
type Compiled struct {
	Session     *interp.Session
	StaticKinds []string
}

// CompileFunc compiles one generated program for campaign execution.
// The root package wires this to its artifact-cached compiler
// (parcoach.Campaign); tests may inject lighter pipelines.
type CompileFunc func(gp *mhgen.Program) (*Compiled, error)

// Options configures a campaign.
type Options struct {
	// Seeds are the mhgen generation seeds of the initial corpus
	// (mhgen.FromSeed each).
	Seeds []uint64
	// Budget is the total number of schedules the campaign may run
	// across the whole corpus (default UniformBudget × len(Seeds)).
	Budget int
	// Seed is the campaign master seed: every schedule seed derives
	// from (Seed, entry id, schedule index).
	Seed uint64
	// Compile builds each corpus entry (required).
	Compile CompileFunc
	// Pool is the shared worker pool (required; width = parallelism).
	Pool *pipeline.Pool
	// Uniform switches to the linear-sweep baseline: every entry gets
	// exactly UniformBudget schedules, one per round, with no
	// retirement, no mutation and no splicing. The coverage signal and
	// the schedule streams are identical to the campaign's, so the two
	// trajectories are directly comparable.
	Uniform bool
	// NoMutate disables seed-neighborhood mutation; NoSplice disables
	// schedule-prefix splicing.
	NoMutate bool
	NoSplice bool
	// NoReduce skips mhgen.Reduce minimization of committed mutant
	// reproducers (the bench harness turns it off: reduction changes
	// the corpus listing, never the coverage trajectory).
	NoReduce bool

	// Initial is the round-0 schedule allocation per entry (default 1:
	// one probe run per program suffices to rank entries, and every
	// extra probe is budget the leaders never get back).
	Initial int
	// MaxPerRound is the per-round allocation of the round's
	// best-yielding entry; every other entry gets a proportional share
	// of it. The default is 2 — deliberately tight: with a cap of 2
	// only entries within half the best rate run at all, which
	// concentrates the budget on the steepest coverage growth (the
	// measured sweep: cap 2 ≈ 3.4× over the linear baseline, cap 8 ≈
	// 2.2×, cap 32 ≈ 1.6×).
	MaxPerRound int
	// DryRounds is how many consecutive parked rounds (relative yield
	// rate rounding to a zero allocation) retire an entry for good
	// (default 8 — long enough for the revisit trickle to probe a
	// parked entry a couple more times before giving up on it).
	DryRounds int
	// UniformBudget is the per-entry schedule count of the uniform
	// baseline and the default-budget multiplier (default 16).
	UniformBudget int
	// MaxCorpus caps the corpus size including mutants (default
	// 2 × len(Seeds)).
	MaxCorpus int

	// Ctx, when non-nil, cancels the campaign: the context is checked
	// between rounds and per job, and in-flight runs are aborted through
	// the interpreter's RunCtx guard. A canceled campaign returns a
	// well-formed partial report (Report.Canceled) reducing only the
	// rounds that merged completely — a half-merged round would break
	// the determinism contract, so the interrupted round's results are
	// dropped.
	Ctx context.Context
	// Checkpoint, when set, is a file path the campaign atomically
	// rewrites (every CheckpointEvery rounds, default 1) with everything
	// needed to resume: coverage key log, corpus snapshots, counters.
	// Programs are NOT serialized — they are regenerated from their
	// mhgen configs on resume, which is why checkpoints stay small.
	Checkpoint string
	// CheckpointEvery is the round cadence of checkpoint writes
	// (default 1 when Checkpoint is set).
	CheckpointEvery int
	// Resume, when set, loads a checkpoint file before running and
	// continues from its round. The checkpoint's option fingerprint must
	// match; a resumed campaign's final report is byte-identical to an
	// uninterrupted run of the same Options (the determinism contract
	// extended across the interruption).
	Resume string
	// HaltAfterRound, when > 0, stops the campaign deterministically
	// after that many completed rounds, writing a final checkpoint
	// (Checkpoint must be set). This is the kill switch the
	// checkpoint/resume smoke uses: a deterministic halt point instead
	// of a flaky mid-write kill.
	HaltAfterRound int
}

func (o *Options) defaults() {
	if o.Initial <= 0 {
		o.Initial = 1
	}
	if o.MaxPerRound <= 0 {
		o.MaxPerRound = 2
	}
	if o.DryRounds <= 0 {
		o.DryRounds = 8
	}
	if o.UniformBudget <= 0 {
		o.UniformBudget = 16
	}
	if o.Budget <= 0 {
		o.Budget = o.UniformBudget * len(o.Seeds)
	}
	if o.MaxCorpus <= 0 {
		o.MaxCorpus = 2 * len(o.Seeds)
	}
	if o.Checkpoint != "" && o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
}

// ctxErr is context.Cause tolerant of a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return context.Cause(ctx)
}

// entry is one corpus member and its frontier bookkeeping.
type entry struct {
	id     int // admission order: the determinism anchor
	gp     *mhgen.Program
	cfg    mhgen.Config // generation config (mutation neighborhood root)
	origin string       // "seed" or a mutant channel name
	hash   uint64       // source hash: the program half of every coverage key
	comp   *Compiled

	staticCaught bool
	detected     bool
	failToken    string // replay token of the first detecting schedule

	runs       int // schedules spent on this entry
	nextSched  int // next schedule-index (seed derivation)
	roundYield int // novel keys this round (reset at round end)
	yield      int // novel keys in the entry's last active round
	lastRuns   int // schedules of the entry's last active round
	totalYield int
	alloc      int // schedules planned this round
	dry        int // consecutive parked rounds
	retired    bool

	splices [][]sched.ThreadID // spliced prefixes planned for next round
}

// bugLabel names an entry's planted bug for the found-bug set.
func (e *entry) bugLabel() string {
	tag := "s"
	if e.origin != "seed" {
		tag = "m"
	}
	return fmt.Sprintf("%s%d:%s", tag, e.gp.Seed, e.gp.Bug)
}

// job is one planned schedule of one entry.
type job struct {
	e      *entry
	sched  int
	prefix []sched.ThreadID
}

// jobResult is the raw material one run hands to the serial merge.
// Keys are derived in the merge (it owns the global set); the job only
// reports what it observed.
type jobResult struct {
	outcome    interp.Outcome
	valueKind  string // value-oracle check kind ("" unless value error)
	trace      []sched.ThreadID
	branches   []branchRec
	edgeShapes []uint64 // raw HB edge signatures (empty if overflowed)
	diverged   bool
}

// Run executes the campaign and returns its report.
func Run(opts Options) (*Report, error) {
	opts.defaults()
	if opts.Compile == nil {
		return nil, fmt.Errorf("campaign: Options.Compile is required")
	}
	if opts.Pool == nil {
		return nil, fmt.Errorf("campaign: Options.Pool is required")
	}
	if len(opts.Seeds) == 0 {
		return nil, fmt.Errorf("campaign: empty seed corpus")
	}

	if opts.HaltAfterRound > 0 && opts.Checkpoint == "" {
		return nil, fmt.Errorf("campaign: HaltAfterRound requires Checkpoint")
	}

	c := &state{
		opts:  opts,
		cover: pipeline.NewShardedSet(),
		seen:  make(map[uint64]bool),
	}

	startRound := 0
	if opts.Resume != "" {
		ck, err := loadCheckpoint(opts.Resume)
		if err != nil {
			return nil, err
		}
		if err := c.restore(ck); err != nil {
			return nil, err
		}
		startRound = ck.Round
	} else {
		// Admit the initial corpus. Generation is cheap and deterministic;
		// compilation fans out on the pool (and through the root's artifact
		// cache when wired).
		gps := make([]*mhgen.Program, len(opts.Seeds))
		comps := make([]*Compiled, len(opts.Seeds))
		errs := make([]error, len(opts.Seeds))
		for i, s := range opts.Seeds {
			gps[i] = mhgen.FromSeed(s)
		}
		opts.Pool.Map(len(gps), func(i int) {
			comps[i], errs[i] = opts.Compile(gps[i])
		})
		for i, gp := range gps {
			if errs[i] != nil {
				return nil, fmt.Errorf("campaign: seed %d: %w", opts.Seeds[i], errs[i])
			}
			cfg := mhgen.Config{Seed: gp.Seed, Bug: gp.Bug, Size: gp.Size}
			c.admit(gp, cfg, "seed", comps[i])
		}
	}

	for round := startRound; c.runs < opts.Budget; round++ {
		if ctxErr(opts.Ctx) != nil {
			c.canceled = true
			break
		}
		jobs := c.plan(round)
		if len(jobs) == 0 {
			break
		}
		results := make([]jobResult, len(jobs))
		opts.Pool.MapCtx(opts.Ctx, len(jobs), func(i int) {
			results[i] = c.execute(jobs[i])
		})
		if ctxErr(opts.Ctx) != nil {
			// Drop the interrupted round: skipped jobs left holes in
			// results and aborted runs carry no verdicts, so merging it
			// would make the partial report depend on worker timing. The
			// report reduces complete rounds only.
			c.canceled = true
			break
		}
		c.merge(round, jobs, results)
		completed := round + 1
		if opts.Checkpoint != "" &&
			(completed%opts.CheckpointEvery == 0 || completed == opts.HaltAfterRound) {
			if err := c.writeCheckpoint(completed); err != nil {
				return nil, err
			}
		}
		if opts.HaltAfterRound > 0 && completed >= opts.HaltAfterRound {
			break
		}
	}

	return c.report(), nil
}

// state is the campaign's mutable world. Everything in it is touched
// only from the serial phases (planning, merge, reporting); the
// parallel phase reads entries' immutable fields and runs sessions.
type state struct {
	opts    Options
	entries []*entry
	cover   *pipeline.ShardedSet
	seen    map[uint64]bool // source hashes of admitted programs (dedup)

	runs       int
	sigKeys    int
	verdictKey int
	edgeKeys   int
	staticKeys int
	trajectory []Point
	mutants    int

	// keyLog records every key that entered the coverage set, in
	// admission order. It exists for checkpointing: ShardedSet has no
	// iteration, so resume rebuilds the set by replaying the log.
	keyLog      []uint64
	canceled    bool
	quarantined int
}

// tryAdd is cover.TryAdd with the checkpoint log attached: every novel
// key is recorded so a resumed campaign can rebuild the exact set.
func (c *state) tryAdd(k uint64) bool {
	if !c.cover.TryAdd(k) {
		return false
	}
	c.keyLog = append(c.keyLog, k)
	return true
}

// admit appends a program to the corpus and credits its static
// coverage (compile-time warning kinds cost no schedule budget).
func (c *state) admit(gp *mhgen.Program, cfg mhgen.Config, origin string, comp *Compiled) *entry {
	e := &entry{
		id:     len(c.entries),
		gp:     gp,
		cfg:    cfg,
		origin: origin,
		hash:   fnvString(gp.Source),
		comp:   comp,
	}
	c.seen[e.hash] = true
	for _, k := range comp.StaticKinds {
		if c.tryAdd(key(classStatic, e.hash, fnvString(k))) {
			c.staticKeys++
		}
	}
	if len(comp.StaticKinds) > 0 && gp.Bug.String() != "none" {
		e.staticCaught = true
	}
	c.entries = append(c.entries, e)
	return e
}

// rateScale is the fixed-point scale of the novel-keys-per-schedule
// rate (integer arithmetic keeps allocation trivially deterministic).
const rateScale = 1024

// reallocate scores the frontier for a round: each entry's allocation
// is proportional to its last active round's rate of novel coverage
// keys per schedule, relative to the round's best entry — the budget
// concentrates where coverage still grows fastest instead of being
// spread evenly. Entries whose relative rate rounds to zero are parked
// for the round (no schedules; a later drop in the leaders' rate can
// revive them), and after DryRounds consecutive parked rounds they
// retire for good. Entries admitted last round probe with Initial.
func (c *state) reallocate(round int) {
	if c.opts.Uniform {
		for _, e := range c.entries {
			e.alloc = 0
			if e.runs < c.opts.UniformBudget {
				e.alloc = 1
			}
		}
		return
	}
	if round == 0 {
		for _, e := range c.entries {
			e.alloc = c.opts.Initial
		}
		return
	}
	rateMax := 0
	for _, e := range c.entries {
		if e.retired || e.lastRuns == 0 {
			continue
		}
		if r := e.yield * rateScale / e.lastRuns; r > rateMax {
			rateMax = r
		}
	}
	for _, e := range c.entries {
		switch {
		case e.retired:
			e.alloc = 0
		case e.lastRuns == 0: // admitted last round, not yet probed
			e.alloc = c.opts.Initial
		default:
			alloc := 0
			if rateMax > 0 {
				alloc = e.yield * rateScale / e.lastRuns * c.opts.MaxPerRound / rateMax
			}
			if alloc == 0 {
				e.dry++
				if e.dry >= c.opts.DryRounds {
					e.retired = true
				}
				e.splices = nil // parked: schedule follow-ups lapse too
			} else {
				e.dry = 0
			}
			e.alloc = alloc
		}
	}
	c.trickle()
}

// trickle spends a side budget on entries the frontier left behind
// (parked or retired): coverage rates are estimated from tiny samples,
// and dynamic-only bugs (races the planted checks only catch on the
// right schedule) hide in the schedule tail — without revisits a
// one-bad-probe entry is starved forever and the campaign loses
// detections the linear sweep finds. The trickle only opens in the
// back half of the budget, after the concentration phase has done its
// work: the front half is spent purely where coverage grows fastest,
// the back half splits evenly between the frontier and a
// fewest-probed-first floor over everyone else.
func (c *state) trickle() {
	if c.runs*2 < c.opts.Budget {
		return
	}
	frontier := 0
	var idle []*entry
	for _, e := range c.entries {
		frontier += e.alloc
		if e.alloc == 0 && e.lastRuns > 0 {
			idle = append(idle, e)
		}
	}
	if frontier == 0 || len(idle) == 0 {
		return
	}
	sort.SliceStable(idle, func(i, j int) bool { return idle[i].runs < idle[j].runs })
	for i := 0; i < frontier && i < len(idle); i++ {
		idle[i].alloc = 1
	}
}

// plan builds the round's job list in corpus order: each live entry's
// pending spliced prefixes first, then its adaptive allocation,
// truncated at the remaining budget.
func (c *state) plan(round int) []job {
	c.reallocate(round)
	remaining := c.opts.Budget - c.runs
	var jobs []job
	for _, e := range c.entries {
		for _, p := range e.splices {
			if len(jobs) >= remaining {
				break
			}
			jobs = append(jobs, job{e: e, sched: e.nextSched, prefix: p})
			e.nextSched++
		}
		e.splices = nil
		for k := 0; k < e.alloc && len(jobs) < remaining; k++ {
			jobs = append(jobs, job{e: e, sched: e.nextSched})
			e.nextSched++
		}
	}
	return jobs
}

// schedSeed derives the PRNG seed of one (entry, schedule index) pair
// from the campaign master seed.
func (c *state) schedSeed(e *entry, idx int) int64 {
	return int64(mix(mix(c.opts.Seed, uint64(e.id)), uint64(idx)) >> 1)
}

// execute runs one job. It mutates nothing outside its own result —
// the determinism contract of the parallel phase. It is also a
// quarantine boundary: a panicking run classifies as
// OutcomeInternalError (its runState is abandoned, never recycled) and
// the campaign continues; the entry is retired in the merge.
func (c *state) execute(j job) (jr jobResult) {
	st := tracerPool.Get().(*runState)
	defer func() {
		if r := recover(); r != nil {
			jr = jobResult{outcome: interp.OutcomeInternalError}
			return
		}
		tracerPool.Put(st)
	}()
	chaos.Here("campaign.execute")
	st.tr.reset(j.prefix, c.schedSeed(j.e, j.sched))

	res := j.e.comp.Session.RunCtx(c.opts.Ctx, &st.tr)
	jr = jobResult{
		outcome:  res.Outcome(),
		trace:    st.tr.trace(),
		diverged: st.tr.diverged,
	}
	if jr.outcome == interp.OutcomeValueError {
		jr.valueKind = valueKindOf(res.Err)
	}
	jr.branches = append([]branchRec(nil), st.tr.branches...)
	for i := range jr.branches {
		jr.branches[i].enabled = append([]sched.ThreadID(nil), jr.branches[i].enabled...)
	}
	if !st.tr.events.Overflowed() {
		st.an.Analyze(&st.tr.events)
		st.an.EdgeSignatures(&st.tr.events, func(sig uint64) {
			jr.edgeShapes = append(jr.edgeShapes, sig)
		})
	}
	return jr
}

// merge folds the round's results into the global coverage set, in job
// order — the only place the set, the frontier scores and the corpus
// change.
func (c *state) merge(round int, jobs []job, results []jobResult) {
	for i := range results {
		e, jr := jobs[i].e, &results[i]
		e.runs++
		c.runs++

		if jr.outcome == interp.OutcomeInternalError {
			// Quarantined panic: a validator bug, not program coverage.
			// Count it, retire the entry (rerunning a crashing entry
			// would burn the budget on the same panic), keep going.
			c.quarantined++
			e.retired = true
			continue
		}
		novel := 0

		if c.tryAdd(key(classVerdict, e.hash, fnvString(jr.outcome.String()+"/"+jr.valueKind))) {
			c.verdictKey++
			novel++
		}
		deepest := -1
		for bi := range jr.branches {
			b := &jr.branches[bi]
			if b.sig == 0 {
				continue
			}
			if c.tryAdd(key(classSig, e.hash, mix(b.sig, uint64(b.chosen)))) {
				c.sigKeys++
				novel++
				deepest = bi
			}
		}
		for _, sig := range jr.edgeShapes {
			if c.tryAdd(key(classEdge, e.hash, sig)) {
				c.edgeKeys++
				novel++
			}
		}

		if (jr.outcome == interp.OutcomeCheckAbort || jr.outcome == interp.OutcomeValueError) && !e.detected {
			e.detected = true
			e.failToken = sched.FormatTrace(jr.trace)
		}

		e.roundYield += novel
		e.totalYield += novel

		// Splice: expand the deepest branch that produced a novel
		// positional signature — the same child expansion DFS performs,
		// but rooted only where this run proved the state space is still
		// growing.
		if novel > 0 && deepest >= 0 && !c.opts.Uniform && !c.opts.NoSplice &&
			len(e.splices) < spliceCap {
			b := &jr.branches[deepest]
			for _, alt := range b.enabled {
				if alt == b.chosen || len(e.splices) >= spliceCap {
					continue
				}
				child := make([]sched.ThreadID, deepest+1)
				copy(child, jr.trace[:deepest])
				child[deepest] = alt
				e.splices = append(e.splices, child)
			}
		}
	}

	// Close the round: frontier scores and mutation (parking and
	// retirement happen in reallocate, where relative rates are known).
	ran := make(map[*entry]int, len(jobs))
	for i := range jobs {
		ran[jobs[i].e]++
	}
	for _, e := range c.entries {
		n := ran[e]
		if n == 0 {
			continue
		}
		e.yield = e.roundYield
		e.lastRuns = n
		if e.roundYield > 0 {
			c.mutate(e)
		}
		e.roundYield = 0
	}

	c.trajectory = append(c.trajectory, Point{
		Round:    round,
		Runs:     c.runs,
		Coverage: c.cover.Len(),
		Bugs:     c.bugCount(),
	})
}

// bugCount counts entries whose planted bug has been caught (static or
// dynamic).
func (c *state) bugCount() int {
	n := 0
	for _, e := range c.entries {
		if e.gp.Bug.String() != "none" && (e.staticCaught || e.detected) {
			n++
		}
	}
	return n
}
