// Campaign checkpoint/resume.
//
// A checkpoint is everything the round loop needs to continue exactly
// where it stopped: the coverage key log (ShardedSet has no iteration,
// so the set is rebuilt by replaying the log), the dedup set of seen
// source hashes (including hashes of neighbors that FAILED to compile —
// omitting those would change future mutation admission), per-entry
// frontier bookkeeping, and the global counters/trajectory. Programs
// themselves are NOT serialized: every corpus entry — seed or mutant —
// is a pure function of its mhgen.Config, so resume regenerates and
// recompiles them, and checkpoints stay a few kilobytes.
//
// The byte-identity contract: Run(opts with Resume) after Run(opts with
// HaltAfterRound=r) produces a report byte-identical to Run(opts)
// uninterrupted, at any worker count. It holds because every schedule
// seed derives from (campaign seed, entry id, schedule index) — all
// checkpointed — and runs are pure functions of (program, seed,
// prefix).
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"parcoach/internal/mhgen"
	"parcoach/internal/sched"
	"parcoach/internal/workload"
)

// checkpointVersion guards the serialization format.
const checkpointVersion = 1

// entrySnap is one corpus entry's resumable state. The program is
// regenerated from (Seed, Bug, Size); everything derived from the
// source (hash, compile, static kinds) is recomputed.
type entrySnap struct {
	Seed         uint64  `json:"seed"`
	Bug          int     `json:"bug"`
	Size         int     `json:"size"`
	Origin       string  `json:"origin"`
	StaticCaught bool    `json:"static_caught,omitempty"`
	Detected     bool    `json:"detected,omitempty"`
	FailToken    string  `json:"fail_token,omitempty"`
	Runs         int     `json:"runs"`
	NextSched    int     `json:"next_sched"`
	Yield        int     `json:"yield"`
	LastRuns     int     `json:"last_runs"`
	TotalYield   int     `json:"total_yield"`
	Dry          int     `json:"dry"`
	Retired      bool    `json:"retired,omitempty"`
	Splices      [][]int `json:"splices,omitempty"`
}

// checkpoint is the serialized campaign state after Round completed
// rounds.
type checkpoint struct {
	Version     int    `json:"version"`
	Fingerprint uint64 `json:"fingerprint"`
	Round       int    `json:"round"` // completed rounds; resume continues here

	Runs        int `json:"runs"`
	SigKeys     int `json:"sig_keys"`
	VerdictKeys int `json:"verdict_keys"`
	EdgeKeys    int `json:"edge_keys"`
	StaticKeys  int `json:"static_keys"`
	Mutants     int `json:"mutants"`
	Quarantined int `json:"quarantined,omitempty"`

	Trajectory []Point     `json:"trajectory"`
	KeyLog     []uint64    `json:"key_log"`
	Seen       []uint64    `json:"seen"`
	Entries    []entrySnap `json:"entries"`
}

// fingerprint hashes every option that shapes the campaign's
// deterministic trajectory. Resuming under different options would
// silently diverge from the uninterrupted run; the fingerprint turns
// that into a loud error. Pool width and checkpoint/halt settings are
// deliberately excluded — they must not affect the trajectory.
func fingerprint(o *Options) uint64 {
	h := fnvString("parcoach-campaign-checkpoint-v1")
	h = mix(h, o.Seed)
	h = mix(h, uint64(o.Budget))
	h = mix(h, boolBit(o.Uniform)<<0|boolBit(o.NoMutate)<<1|boolBit(o.NoSplice)<<2|boolBit(o.NoReduce)<<3)
	h = mix(h, uint64(o.Initial))
	h = mix(h, uint64(o.MaxPerRound))
	h = mix(h, uint64(o.DryRounds))
	h = mix(h, uint64(o.UniformBudget))
	h = mix(h, uint64(o.MaxCorpus))
	h = mix(h, uint64(len(o.Seeds)))
	for _, s := range o.Seeds {
		h = mix(h, s)
	}
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// writeCheckpoint atomically replaces the checkpoint file (write to a
// temp file in the same directory, then rename) so a kill mid-write
// leaves the previous checkpoint intact.
func (c *state) writeCheckpoint(completedRounds int) error {
	ck := checkpoint{
		Version:     checkpointVersion,
		Fingerprint: fingerprint(&c.opts),
		Round:       completedRounds,
		Runs:        c.runs,
		SigKeys:     c.sigKeys,
		VerdictKeys: c.verdictKey,
		EdgeKeys:    c.edgeKeys,
		StaticKeys:  c.staticKeys,
		Mutants:     c.mutants,
		Quarantined: c.quarantined,
		Trajectory:  c.trajectory,
		KeyLog:      c.keyLog,
	}
	ck.Seen = make([]uint64, 0, len(c.seen))
	for h := range c.seen {
		ck.Seen = append(ck.Seen, h)
	}
	// Map order is random; sort for a stable file. (Resume semantics
	// don't need it — the set is order-free — but diffable checkpoints
	// make the smoke scripts' failures readable.)
	sort.Slice(ck.Seen, func(i, j int) bool { return ck.Seen[i] < ck.Seen[j] })
	for _, e := range c.entries {
		snap := entrySnap{
			Seed:         e.cfg.Seed,
			Bug:          int(e.cfg.Bug),
			Size:         int(e.cfg.Size),
			Origin:       e.origin,
			StaticCaught: e.staticCaught,
			Detected:     e.detected,
			FailToken:    e.failToken,
			Runs:         e.runs,
			NextSched:    e.nextSched,
			Yield:        e.yield,
			LastRuns:     e.lastRuns,
			TotalYield:   e.totalYield,
			Dry:          e.dry,
			Retired:      e.retired,
		}
		for _, p := range e.splices {
			sp := make([]int, len(p))
			for i, t := range p {
				sp[i] = int(t)
			}
			snap.Splices = append(snap.Splices, sp)
		}
		ck.Entries = append(ck.Entries, snap)
	}
	data, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(c.opts.Checkpoint)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("campaign: checkpoint temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.opts.Checkpoint); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: commit checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads and validates a checkpoint file.
func loadCheckpoint(path string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	return &ck, nil
}

// restore rebuilds the campaign state from a checkpoint: regenerate
// every corpus program from its config, recompile on the pool, replay
// the coverage key log, and restore the frontier bookkeeping.
func (c *state) restore(ck *checkpoint) error {
	if got, want := ck.Fingerprint, fingerprint(&c.opts); got != want {
		return fmt.Errorf("campaign: checkpoint was written under different options (fingerprint %x, want %x)", got, want)
	}
	if len(ck.Entries) < len(c.opts.Seeds) {
		return fmt.Errorf("campaign: checkpoint has %d entries for %d seeds", len(ck.Entries), len(c.opts.Seeds))
	}

	gps := make([]*mhgen.Program, len(ck.Entries))
	comps := make([]*Compiled, len(ck.Entries))
	errs := make([]error, len(ck.Entries))
	for i, snap := range ck.Entries {
		cfg := mhgen.Config{Seed: snap.Seed, Bug: workload.Bug(snap.Bug), Size: mhgen.Size(snap.Size)}
		gps[i] = mhgen.Generate(cfg)
	}
	c.opts.Pool.Map(len(gps), func(i int) {
		comps[i], errs[i] = c.opts.Compile(gps[i])
	})
	for i := range ck.Entries {
		if errs[i] != nil {
			return fmt.Errorf("campaign: recompile corpus entry %d on resume: %w", i, errs[i])
		}
	}

	for i, snap := range ck.Entries {
		e := &entry{
			id:           i,
			gp:           gps[i],
			cfg:          mhgen.Config{Seed: snap.Seed, Bug: workload.Bug(snap.Bug), Size: mhgen.Size(snap.Size)},
			origin:       snap.Origin,
			hash:         fnvString(gps[i].Source),
			comp:         comps[i],
			staticCaught: snap.StaticCaught,
			detected:     snap.Detected,
			failToken:    snap.FailToken,
			runs:         snap.Runs,
			nextSched:    snap.NextSched,
			yield:        snap.Yield,
			lastRuns:     snap.LastRuns,
			totalYield:   snap.TotalYield,
			dry:          snap.Dry,
			retired:      snap.Retired,
		}
		for _, sp := range snap.Splices {
			p := make([]sched.ThreadID, len(sp))
			for j, t := range sp {
				p[j] = sched.ThreadID(t)
			}
			e.splices = append(e.splices, p)
		}
		c.entries = append(c.entries, e)
	}

	for _, k := range ck.KeyLog {
		c.cover.TryAdd(k)
	}
	c.keyLog = append(c.keyLog, ck.KeyLog...)
	for _, h := range ck.Seen {
		c.seen[h] = true
	}
	c.runs = ck.Runs
	c.sigKeys = ck.SigKeys
	c.verdictKey = ck.VerdictKeys
	c.edgeKeys = ck.EdgeKeys
	c.staticKeys = ck.StaticKeys
	c.mutants = ck.Mutants
	c.quarantined = ck.Quarantined
	c.trajectory = append(c.trajectory, ck.Trajectory...)
	return nil
}
