package campaign

import (
	"sync"

	"parcoach/internal/mhgen"
	"parcoach/internal/monitor"
	"parcoach/internal/workload"
)

// runState is one worker's reusable run machinery: the recording
// scheduler and the vector-clock analysis.
type runState struct {
	tr tracer
	an monitor.Analysis
}

var tracerPool = sync.Pool{New: func() any { return new(runState) }}

// spliceCap bounds the spliced children one run may queue for the next
// round: splices re-walk a known prefix, so their novel-key rate is
// structurally below a fresh schedule's — a small cap keeps them an
// exploration garnish, not a budget sink.
const spliceCap = 2

// seedDisplacement moves a mutant's generation seed far outside any
// plausible sweep range, so displaced-seed mutants never collide with
// corpus seeds.
const seedDisplacement = 0x9e3779b9

// neighborhood enumerates the mhgen seed neighborhood of a generation
// config: the same seed with the bug class rotated, with the size
// flipped, and a displaced seed with the same class — the three
// cheapest moves that keep a productive program's shape while changing
// which behavior is planted where.
func neighborhood(cfg mhgen.Config) []mhgen.Config {
	rot := cfg
	all := workload.AllBugs
	next := 0
	for i, b := range all {
		if b == cfg.Bug {
			next = (i + 1) % len(all)
			break
		}
	}
	rot.Bug = all[next]

	flip := cfg
	if flip.Size == mhgen.SizeSmall {
		flip.Size = mhgen.SizeMedium
	} else {
		flip.Size = mhgen.SizeSmall
	}

	disp := cfg
	disp.Seed += seedDisplacement

	return []mhgen.Config{rot, flip, disp}
}

// mutate admits at most one novel neighbor of a yielding entry,
// rotating through the neighborhood across rounds. Runs in the serial
// merge; admission order (and hence entry ids) is deterministic.
func (c *state) mutate(e *entry) {
	if c.opts.Uniform || c.opts.NoMutate || len(c.entries) >= c.opts.MaxCorpus {
		return
	}
	for _, cfg := range neighborhood(e.cfg) {
		gp := mhgen.Generate(cfg)
		h := fnvString(gp.Source)
		if c.seen[h] {
			continue
		}
		comp, err := c.opts.Compile(gp)
		if err != nil {
			// A generator neighbor that fails to compile is a generator
			// bug; skip it rather than abort a long campaign.
			c.seen[h] = true
			continue
		}
		c.admit(gp, cfg, "mutant", comp)
		c.mutants++
		return
	}
}
