package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"parcoach/internal/chaos"
	"parcoach/internal/leakcheck"
)

// spinServeSrc loops effectively forever — the program a disconnect or
// watchdog test needs the daemon to be stuck inside.
const spinServeSrc = `
func main() {
	MPI_Init()
	var i = 0
	while i < 2000000000 {
		i = i + 1
	}
	MPI_Finalize()
}`

// disconnectBound is the asserted ceiling between a client disconnect
// and the daemon's accounting of it (handler returned, run aborted).
const disconnectBound = 10 * time.Second

// waitFor polls cond until it holds or the bound passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(disconnectBound)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s did not happen within %v", what, disconnectBound)
}

// TestRunClientDisconnectCancelsRun: a /run client that hangs up
// mid-run gets its run aborted within a bounded interval — the slot
// frees, the counters move, and the daemon serves the next request.
func TestRunClientDisconnectCancelsRun(t *testing.T) {
	defer leakcheck.Check(t)
	s, ts := newTestServer(t, Config{})
	before := s.Snapshot()

	body, _ := json.Marshal(map[string]any{"name": "spin.mh", "source": spinServeSrc, "schedule": "rr"})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Let the request compile and enter the spinning run, then hang up.
	waitFor(t, "the run starting", func() bool { return s.Snapshot().Requests > before.Requests })
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request still returned a response")
	}
	waitFor(t, "the disconnect being counted", func() bool {
		st := s.Snapshot()
		return st.Robust.CanceledRequests > before.Robust.CanceledRequests &&
			st.Robust.CanceledRuns > before.Robust.CanceledRuns
	})

	// The daemon is healthy: the same artifact still answers.
	code, _ := postJSON(t, ts.URL+"/compile", map[string]any{"name": "clean.mh", "source": cleanSrc})
	if code != http.StatusOK {
		t.Fatalf("post-disconnect compile answered %d", code)
	}
}

// TestExploreStreamClientDisconnect is the hanging-then-disconnecting
// client regression: a streamed /explore whose client reads the start
// event and vanishes must cancel the exploration within a bounded
// interval instead of running the remaining budget for nobody.
func TestExploreStreamClientDisconnect(t *testing.T) {
	defer leakcheck.Check(t)
	s, ts := newTestServer(t, Config{})
	before := s.Snapshot()

	// Slow every run down a little so the exploration is mid-flight —
	// deterministically — when the client hangs up.
	disarm := chaos.Arm(chaos.Config{
		"explore.run": {First: 1, Every: 1, Action: chaos.ActSleep, Sleep: 5 * time.Millisecond},
	})
	defer disarm()

	body, _ := json.Marshal(map[string]any{
		"name": "buggy.mh", "source": buggySrc,
		"strategy": "random", "schedules": 100000, "workers": 2, "stream": true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/explore", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read the first event — the client is now demonstrably mid-stream —
	// then disconnect.
	if line, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil || !strings.Contains(line, `"start"`) {
		t.Fatalf("first stream event %q, err %v", line, err)
	}
	cancel()

	waitFor(t, "the exploration being canceled", func() bool {
		st := s.Snapshot()
		return st.Robust.CanceledRequests > before.Robust.CanceledRequests
	})
	// The exploration stopped far short of its 100k budget.
	if st := s.Snapshot(); st.Explore.Schedules-before.Explore.Schedules >= 100000 {
		t.Fatalf("disconnected exploration ran its full budget (%d schedules)", st.Explore.Schedules)
	}
}

// TestGuardedPanicAnswers500: a handler panic is quarantined at the
// middleware — the client gets a 500 with an error envelope, the
// counter moves, and the daemon keeps serving.
func TestGuardedPanicAnswers500(t *testing.T) {
	defer leakcheck.Check(t)
	s, ts := newTestServer(t, Config{})
	disarm := chaos.Arm(chaos.Config{
		"serve.request": {First: 1, Action: chaos.ActPanic},
	})
	defer disarm()

	code, raw := postJSON(t, ts.URL+"/compile", map[string]any{"name": "clean.mh", "source": cleanSrc})
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500; body %s", code, raw)
	}
	if !strings.Contains(string(raw), "panic quarantined at serve.request") {
		t.Fatalf("500 body does not identify the quarantine: %s", raw)
	}
	if got := s.Snapshot().Robust.QuarantinedPanics; got != 1 {
		t.Fatalf("QuarantinedPanics = %d, want 1", got)
	}

	// Arrival 2 passes through: the daemon survived its own bug.
	code, _ = postJSON(t, ts.URL+"/compile", map[string]any{"name": "clean.mh", "source": cleanSrc})
	if code != http.StatusOK {
		t.Fatalf("post-panic compile answered %d", code)
	}
}

// TestRunTimeoutWatchdog: Config.RunTimeout turns a wedged run into an
// answered request with outcome "timeout" instead of a hung slot.
func TestRunTimeoutWatchdog(t *testing.T) {
	defer leakcheck.Check(t)
	s, ts := newTestServer(t, Config{RunTimeout: 100 * time.Millisecond})
	before := s.Snapshot()

	code, raw := postJSON(t, ts.URL+"/run", map[string]any{
		"name": "spin.mh", "source": spinServeSrc, "schedule": "rr",
	})
	if code != http.StatusOK {
		t.Fatalf("watchdogged run answered %d: %s", code, raw)
	}
	res := decode[runResponse](t, raw)
	if res.Outcome != "timeout" {
		t.Fatalf("watchdogged run outcome %q, want timeout", res.Outcome)
	}
	if st := s.Snapshot(); st.Robust.WatchdogRuns <= before.Robust.WatchdogRuns {
		t.Fatal("watchdog abort not counted in /stats")
	}
}

// TestStatsSurfacesRobustness: the /stats payload carries the
// robustness section with all four counters present as JSON numbers.
func TestStatsSurfacesRobustness(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	var robust map[string]int64
	if err := json.Unmarshal(payload["robust"], &robust); err != nil {
		t.Fatalf("stats lacks a robust section: %v", err)
	}
	for _, key := range []string{"canceledRequests", "quarantinedPanics", "canceledRuns", "watchdogRuns"} {
		if _, ok := robust[key]; !ok {
			t.Errorf("robust section lacks %q: %s", key, payload["robust"])
		}
	}
}
