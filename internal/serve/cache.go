// Artifact cache: the content-addressed heart of the daemon.
//
// Every compile request is named by parcoach.CacheKey — SHA-256 of the
// source bytes plus the canonicalized compile options (worker count
// excluded: it cannot change the artifact) — and resolves to one
// cached artifact holding the compiled *parcoach.Program, its
// diagnostics, and the warm interp.Session pool for that artifact.
// Concurrent identical submissions are deduplicated singleflight-style:
// the first requester compiles, everyone else parks on the artifact's
// ready channel and serves the same result, so a thundering herd of
// identical sources costs exactly one compilation.
package serve

import (
	"context"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"parcoach"
	"parcoach/internal/interp"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
)

// artifact is one cache entry: the compiled program (or its compile
// error — failures are cached too, so a hostile client re-submitting a
// broken source cannot force recompiles), and the warm session pool.
type artifact struct {
	key  string
	name string
	// ready closes when the compile finishes; prog/err are immutable
	// afterwards. Followers of the singleflight wait here.
	ready chan struct{}
	prog  *parcoach.Program
	err   error
	// lastUsed orders LRU eviction (unix nanos).
	lastUsed atomic.Int64

	// sessions maps normalized run parameters to the warm session
	// serving them. interp.Session is safe for concurrent use, so one
	// session per parameter set is all the pooling needed: its internal
	// pools recycle run state across every request that shares it.
	mu       sync.Mutex
	sessions map[sessionKey]*interp.Session
}

func (a *artifact) touch() { a.lastUsed.Store(time.Now().UnixNano()) }

// sessionKey is the identity of a warm session: the run parameters the
// session normalized at construction, plus which tree it executes.
type sessionKey struct {
	procs, threads int
	level          mpi.ThreadLevel
	levelSet       bool
	policy         omp.Policy
	maxSteps       int64
	uninstrumented bool
}

// session returns (building on first use) the warm session for the
// given run parameters.
func (a *artifact) session(k sessionKey, drain, runTimeout time.Duration) *interp.Session {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.sessions[k]; ok {
		return s
	}
	target := a.prog.Source
	if !k.uninstrumented && a.prog.Instrumented != nil {
		target = a.prog.Instrumented
	}
	s := interp.NewSession(target, interp.Options{
		Procs:    k.procs,
		Threads:  k.threads,
		Level:    k.level,
		LevelSet: k.levelSet,
		Policy:   k.policy,
		MaxSteps: k.maxSteps,
		// Mirror parcoach.Program.Run: full-mode artifacts run with the
		// value oracle armed; uninstrumented ground-truth runs do not.
		ValueCheck:   !k.uninstrumented && a.prog.Mode() >= parcoach.ModeFull,
		DrainTimeout: drain,
		WallTimeout:  runTimeout,
	})
	if a.sessions == nil {
		a.sessions = make(map[sessionKey]*interp.Session)
	}
	a.sessions[k] = s
	return s
}

// sessionStats reports this artifact's warm-session count and the runs
// its sessions abandoned on drain timeout.
func (a *artifact) sessionStats() (warm int, abandoned int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range a.sessions {
		abandoned += s.Abandoned()
	}
	return len(a.sessions), abandoned
}

// artifactFor resolves (name, source, opts) to its cached artifact,
// compiling at most once per key no matter how many requests race. The
// bool reports whether the result was served from cache (false exactly
// for the one request that compiled). Waits are bounded by ctx.
func (s *Server) artifactFor(ctx context.Context, name, source string, opts parcoach.Options) (*artifact, bool, error) {
	key := parcoach.CacheKey(name, source, opts)
	s.mu.Lock()
	if a, ok := s.cache[key]; ok {
		s.mu.Unlock()
		select {
		case <-a.ready:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		a.touch()
		s.hits.Add(1)
		return a, true, nil
	}
	a := &artifact{key: key, name: name, ready: make(chan struct{})}
	a.touch()
	s.cache[key] = a
	s.evictLocked()
	s.mu.Unlock()
	s.misses.Add(1)
	// Compile on the requesting goroutine — it holds a concurrency slot
	// already, so the compile pool's width is the only parallelism knob.
	// A panic inside the pipeline is quarantined into a cached error (the
	// source deterministically breaks this compiler — recompiling it for
	// the next client would panic again); a context cancellation is NOT
	// cached: the entry is evicted so the next client gets a real compile.
	opts.Workers = 0 // the compiler's shared pool decides
	func() {
		defer func() {
			if r := recover(); r != nil {
				a.prog, a.err = nil, interp.NewQuarantineError("serve.compile", r, debug.Stack())
			}
		}()
		a.prog, a.err = s.compiler.CompileCtx(ctx, name, source, opts)
	}()
	if a.err != nil && ctx.Err() != nil {
		s.mu.Lock()
		if s.cache[key] == a {
			delete(s.cache, key)
		}
		s.mu.Unlock()
	}
	close(a.ready)
	return a, false, nil
}

// lookup resolves a key the client obtained from a previous /compile;
// nil when the key is unknown (or was evicted).
func (s *Server) lookup(ctx context.Context, key string) (*artifact, error) {
	s.mu.Lock()
	a := s.cache[key]
	s.mu.Unlock()
	if a == nil {
		return nil, nil
	}
	select {
	case <-a.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	a.touch()
	a.touchIsHit(s)
	return a, nil
}

func (a *artifact) touchIsHit(s *Server) { s.hits.Add(1) }

// evictLocked drops least-recently-used artifacts beyond the cache cap.
// Entries still compiling (ready open) are never evicted — the
// singleflight followers hold their pointer anyway.
func (s *Server) evictLocked() {
	for len(s.cache) > s.cfg.CacheCap {
		var oldest *artifact
		for _, a := range s.cache {
			select {
			case <-a.ready:
			default:
				continue // in flight
			}
			if oldest == nil || a.lastUsed.Load() < oldest.lastUsed.Load() {
				oldest = a
			}
		}
		if oldest == nil {
			return // everything in flight; over-cap transiently
		}
		delete(s.cache, oldest.key)
		s.evicted.Add(1)
	}
}
