// The JSON API: request/response shapes and the three POST endpoints.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"parcoach"
	"parcoach/internal/explore"
	"parcoach/internal/interp"
	"parcoach/internal/mpi"
	"parcoach/internal/omp"
	"parcoach/internal/sched"
)

func abandonedWorldsCount() int64 { return interp.AbandonedWorlds() }

// writeCompileError distinguishes the client's fault from ours: a
// normal compile error is 422 (the source is broken), a quarantined
// compiler panic is 500 (the compiler is broken — retrying the same
// source cannot help, but other sources are fine).
func writeCompileError(w http.ResponseWriter, err error) {
	var qe *interp.QuarantineError
	if errors.As(err, &qe) {
		writeError(w, http.StatusInternalServerError, "compile failed: %v", err)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "compile failed: %v", err)
}

// compileSpec names a program: either a key from a previous /compile, or
// inline source with compile options. Embedded by every request type.
type compileSpec struct {
	// Key is the content address returned by /compile; mutually
	// exclusive with Source.
	Key string `json:"key,omitempty"`
	// Name and Source submit a program inline (Name defaults to
	// "input.mh"; it participates in the cache key because diagnostics
	// embed it).
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
	// Mode is "baseline", "analyze" or "full" (default "full").
	Mode string `json:"mode,omitempty"`
	// Initial is "mono" or "multi" (the analysis' starting context).
	Initial string `json:"initial,omitempty"`
	// RawPDF disables the rank-dependence refinement (ablation).
	RawPDF bool `json:"rawPDF,omitempty"`
}

func (c *compileSpec) options() (parcoach.Options, error) {
	var opts parcoach.Options
	switch c.Mode {
	case "", "full":
		opts.Mode = parcoach.ModeFull
	case "analyze":
		opts.Mode = parcoach.ModeAnalyze
	case "baseline":
		opts.Mode = parcoach.ModeBaseline
	default:
		return opts, fmt.Errorf("unknown mode %q (want baseline|analyze|full)", c.Mode)
	}
	switch c.Initial {
	case "", "mono":
		opts.Initial = parcoach.ContextMonothreaded
	case "multi":
		opts.Initial = parcoach.ContextMultithreaded
	default:
		return opts, fmt.Errorf("unknown initial context %q (want mono|multi)", c.Initial)
	}
	opts.RawPDF = c.RawPDF
	return opts, nil
}

// resolve turns the spec into a ready artifact. A nil artifact with a
// written response means the handler is done (error already sent).
func (s *Server) resolve(w http.ResponseWriter, r *http.Request, c *compileSpec) (*artifact, bool) {
	if c.Key != "" && c.Source != "" {
		writeError(w, http.StatusBadRequest, "give key or source, not both")
		return nil, false
	}
	if c.Key != "" {
		a, err := s.lookup(r.Context(), c.Key)
		if err != nil {
			return nil, false // client gone
		}
		if a == nil {
			writeError(w, http.StatusNotFound, "unknown artifact key %q (evicted or never compiled here)", c.Key)
			return nil, false
		}
		return a, true
	}
	if c.Source == "" {
		writeError(w, http.StatusBadRequest, "empty source (give key or source)")
		return nil, false
	}
	opts, err := c.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	name := c.Name
	if name == "" {
		name = "input.mh"
	}
	a, cached, err := s.artifactFor(r.Context(), name, c.Source, opts)
	if err != nil {
		return nil, false // client gone mid-singleflight
	}
	return a, cached
}

// runSpec is the shared run-parameter block of /run and /explore.
type runSpec struct {
	Procs    int    `json:"procs,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	Level    string `json:"level,omitempty"`  // single|funneled|serialized|multiple
	Policy   string `json:"policy,omitempty"` // first-arrival|round-robin
	MaxSteps int64  `json:"maxSteps,omitempty"`
	// Uninstrumented runs the pristine source even when the artifact has
	// an instrumented tree (the "what happens on a real machine" view).
	Uninstrumented bool `json:"uninstrumented,omitempty"`
}

// sessionKey normalizes the spec into a warm-session identity.
func (rs *runSpec) sessionKey() (sessionKey, error) {
	k := sessionKey{
		procs:          rs.Procs,
		threads:        rs.Threads,
		maxSteps:       rs.MaxSteps,
		uninstrumented: rs.Uninstrumented,
	}
	switch rs.Level {
	case "":
	case "single":
		k.level, k.levelSet = mpi.ThreadSingle, true
	case "funneled":
		k.level, k.levelSet = mpi.ThreadFunneled, true
	case "serialized":
		k.level, k.levelSet = mpi.ThreadSerialized, true
	case "multiple":
		k.level, k.levelSet = mpi.ThreadMultiple, true
	default:
		return k, fmt.Errorf("unknown thread level %q (want single|funneled|serialized|multiple)", rs.Level)
	}
	switch rs.Policy {
	case "", "first-arrival":
		k.policy = omp.FirstArrival
	case "round-robin":
		k.policy = omp.RoundRobin
	default:
		return k, fmt.Errorf("unknown policy %q (want first-arrival|round-robin)", rs.Policy)
	}
	return k, nil
}

//
// POST /compile
//

type compileRequest struct {
	compileSpec
}

type compileResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	// Diagnostics is the full analysis output, one rendered line each —
	// byte-identical between a cache hit and a fresh compile.
	Diagnostics []string `json:"diagnostics"`
	// WarningKinds is the sorted deduplicated error-class kinds (the
	// static verdict).
	WarningKinds []string `json:"warningKinds"`
	Functions    int      `json:"functions"`
	Statements   int      `json:"statements"`
	IRInsts      int      `json:"irInsts"`
	Instrumented bool     `json:"instrumented"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Key != "" {
		writeError(w, http.StatusBadRequest, "/compile takes source, not a key")
		return
	}
	a, cached := s.resolve(w, r, &req.compileSpec)
	if a == nil {
		return
	}
	if a.err != nil {
		writeCompileError(w, a.err)
		return
	}
	writeJSON(w, compileResult(a, cached))
}

func compileResult(a *artifact, cached bool) compileResponse {
	p := a.prog
	resp := compileResponse{
		Key:          a.key,
		Cached:       cached,
		Diagnostics:  []string{},
		WarningKinds: p.WarningKinds(),
		Functions:    p.Stats.Functions,
		Statements:   p.Stats.Statements,
		IRInsts:      p.Stats.IRInsts,
		Instrumented: p.Instrumented != nil,
	}
	if resp.WarningKinds == nil {
		resp.WarningKinds = []string{}
	}
	for _, d := range p.Diagnostics() {
		resp.Diagnostics = append(resp.Diagnostics, d.String())
	}
	return resp
}

//
// POST /run
//

type runRequest struct {
	compileSpec
	runSpec
	// Schedule is a replay token (rr, rand:<seed>, pct:<seed>:<depth>,
	// trace:...); empty keeps the free-running goroutine execution.
	Schedule string `json:"schedule,omitempty"`
}

type runStats struct {
	Collectives int64 `json:"collectives"`
	P2PMessages int64 `json:"p2pMessages"`
	Barriers    int64 `json:"barriers"`
	Steps       int64 `json:"steps"`
	CCChecks    int   `json:"ccChecks"`
	PhaseChecks int   `json:"phaseChecks"`
	ValueChecks int   `json:"valueChecks"`
}

type runResponse struct {
	Key     string   `json:"key"`
	Cached  bool     `json:"cached"`
	Outcome string   `json:"outcome"`
	Error   string   `json:"error,omitempty"`
	Output  string   `json:"output"`
	Stats   runStats `json:"stats"`
	// Diverged is true when a trace replay stopped matching the program:
	// whatever ran was NOT the recorded schedule.
	Diverged bool `json:"diverged,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !decodeInto(w, r, &req) {
		return
	}
	var scheduler sched.Scheduler
	if req.Schedule != "" {
		var err error
		if scheduler, err = sched.Parse(req.Schedule); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if req.MaxSteps == 0 {
			// Match the exploration default so replay tokens minted by
			// /explore reproduce under the bound they were found with.
			req.MaxSteps = explore.DefaultMaxSteps
		}
	}
	key, err := req.sessionKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, cached := s.resolve(w, r, &req.compileSpec)
	if a == nil {
		return
	}
	if a.err != nil {
		writeCompileError(w, a.err)
		return
	}
	res := a.session(key, s.cfg.DrainTimeout, s.cfg.RunTimeout).RunCtx(r.Context(), scheduler)
	resp := runResponse{
		Key:     a.key,
		Cached:  cached,
		Outcome: res.Outcome().String(),
		Output:  res.Output,
		Stats: runStats{
			Collectives: res.Stats.Collectives,
			P2PMessages: res.Stats.P2PMessages,
			Barriers:    res.Stats.Barriers,
			Steps:       res.Stats.Steps,
			CCChecks:    res.Stats.CCChecks,
			PhaseChecks: res.Stats.PhaseChecks,
			ValueChecks: res.Stats.ValueChecks,
		},
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	if rp, ok := scheduler.(*sched.Replay); ok && rp.Diverged() {
		resp.Diverged = true
	}
	writeJSON(w, resp)
}

//
// POST /explore
//

type exploreRequest struct {
	compileSpec
	runSpec
	// Strategy is rr|random|pct|dfs (default random); Frontier is
	// steal|wave|dpor (DFS only, default steal).
	Strategy  string `json:"strategy,omitempty"`
	Frontier  string `json:"frontier,omitempty"`
	Schedules int    `json:"schedules,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	PCTDepth  int    `json:"pctDepth,omitempty"`
	// Workers widths the exploration's run fan-out (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Stream switches the response to NDJSON: one JSON object per line —
	// "start", then "verdict" (first run of each outcome class),
	// "failure" (first non-clean run, with its replay token), "progress"
	// heartbeats, and a final "report".
	Stream bool `json:"stream,omitempty"`
	// ProgressEvery is the heartbeat period in completed runs (streamed
	// mode; default 64, minimum 1).
	ProgressEvery int `json:"progressEvery,omitempty"`
}

type verdictJSON struct {
	Outcome string `json:"outcome"`
	Count   int    `json:"count"`
	First   int    `json:"first"`
	Error   string `json:"error,omitempty"`
	// Schedule replays the first run of this class (also accepted by
	// hybridrun -replay).
	Schedule string `json:"schedule"`
}

type failureJSON struct {
	Outcome  string `json:"outcome"`
	Error    string `json:"error"`
	Schedule string `json:"schedule"`
	Index    int    `json:"index"`
}

type reportJSON struct {
	Key        string        `json:"key"`
	Cached     bool          `json:"cached"`
	Strategy   string        `json:"strategy"`
	Schedules  int           `json:"schedules"`
	Exhausted  bool          `json:"exhausted"`
	Pruned     int           `json:"pruned"`
	SleepSkips int           `json:"sleepSkips"`
	Diverged   int           `json:"diverged"`
	Verdicts   []verdictJSON `json:"verdicts"`
	// FirstFailure is the earliest failing schedule in canonical order,
	// nil when the explored space is clean.
	FirstFailure *failureJSON `json:"firstFailure"`
	// Canceled marks a partial report (client disconnect or timeout cut
	// the exploration short); Quarantined counts runs whose panic was
	// caught and classified as internal-error.
	Canceled    bool `json:"canceled,omitempty"`
	Quarantined int  `json:"quarantined,omitempty"`
}

// streamEvent is one NDJSON line of a streamed exploration.
type streamEvent struct {
	Event string `json:"event"` // start|verdict|failure|progress|error|report
	// start
	Key    string `json:"key,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// verdict/failure/progress
	Done     int    `json:"done,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Error    string `json:"error,omitempty"`
	Schedule string `json:"schedule,omitempty"`
	// report
	Report *reportJSON `json:"report,omitempty"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if !decodeInto(w, r, &req) {
		return
	}
	opts := explore.Options{
		Schedules: req.Schedules,
		Seed:      req.Seed,
		PCTDepth:  req.PCTDepth,
		Workers:   req.Workers,
	}
	if req.Strategy != "" {
		var err error
		if opts.Strategy, err = explore.ParseStrategy(req.Strategy); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		opts.Strategy = explore.StrategyRandom
	}
	if req.Frontier != "" {
		var err error
		if opts.Frontier, err = explore.ParseFrontier(req.Frontier); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	key, err := req.sessionKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The exploration step budget defaults below the interpreter's plain
	// default (spinning schedules must classify, not hang the budget);
	// the session key must carry the post-normalization value so /run
	// replays of streamed tokens land on the same warm session.
	if key.maxSteps <= 0 {
		key.maxSteps = explore.DefaultMaxSteps
	}
	opts.Procs, opts.Threads = key.procs, key.threads
	opts.MaxSteps = key.maxSteps
	opts.Policy = key.policy
	opts.Level, opts.LevelSet = key.level, key.levelSet

	a, cached := s.resolve(w, r, &req.compileSpec)
	if a == nil {
		return
	}
	if a.err != nil {
		writeCompileError(w, a.err)
		return
	}
	// The request context threads through the whole exploration: a client
	// disconnect cancels the frontier within one run, and the report that
	// falls out is the well-formed partial (Canceled=true).
	opts.Ctx = r.Context()
	sess := a.session(key, s.cfg.DrainTimeout, s.cfg.RunTimeout)

	if !req.Stream {
		start := time.Now()
		rep := explore.ExploreSession(sess, opts)
		s.noteExplore(rep, start)
		writeJSON(w, renderReport(rep, a.key, cached))
		return
	}

	// Streamed mode: NDJSON, one event per line, flushed as produced.
	// Progress callbacks arrive serialized (the engine's sink holds a
	// lock across delivery), and the handler itself only writes before
	// the exploration starts and after it returns, so the writer needs
	// no extra locking.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev streamEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(streamEvent{Event: "start", Key: a.key, Cached: cached})

	every := req.ProgressEvery
	if every <= 0 {
		every = 64
	}
	var failed bool
	opts.Progress = func(ev explore.ProgressEvent) {
		switch {
		case ev.NewVerdict:
			out := streamEvent{Event: "verdict", Done: ev.Done,
				Outcome: ev.Outcome.String(), Error: ev.Err, Schedule: ev.Schedule}
			emit(out)
			if ev.Outcome != interp.OutcomeClean && !failed {
				failed = true
				out.Event = "failure"
				emit(out)
			}
		case ev.Done%every == 0:
			emit(streamEvent{Event: "progress", Done: ev.Done})
		}
	}
	start := time.Now()
	rep, err := runExploreStream(sess, opts)
	if err != nil {
		// The stream has already begun (the start event is out, the HTTP
		// status is committed), so the failure must reach the client as a
		// terminal typed record — never a silent mid-stream truncation.
		emit(streamEvent{Event: "error", Error: err.Error()})
		return
	}
	s.noteExplore(rep, start)
	final := renderReport(rep, a.key, cached)
	emit(streamEvent{Event: "report", Report: &final})
}

// exploreStream is the streamed handler's exploration entry point,
// swappable by tests to inject a mid-run failure.
var exploreStream = explore.ExploreSession

// runExploreStream runs the exploration and converts a panic into an
// error the streamed handler can deliver as a terminal typed event.
func runExploreStream(sess *interp.Session, opts explore.Options) (rep *explore.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exploration failed: %v", r)
		}
	}()
	return exploreStream(sess, opts), nil
}

// noteExplore folds one exploration into the throughput counters.
func (s *Server) noteExplore(rep *explore.Report, start time.Time) {
	s.schedTotal.Add(int64(rep.Schedules))
	s.schedNanos.Add(int64(time.Since(start)))
}

func renderReport(rep *explore.Report, key string, cached bool) reportJSON {
	out := reportJSON{
		Key:         key,
		Cached:      cached,
		Strategy:    rep.Strategy.String(),
		Schedules:   rep.Schedules,
		Exhausted:   rep.Exhausted,
		Pruned:      rep.Pruned,
		SleepSkips:  rep.SleepSkips,
		Diverged:    rep.Diverged,
		Verdicts:    []verdictJSON{},
		Canceled:    rep.Canceled,
		Quarantined: rep.Quarantined,
	}
	for _, v := range rep.Verdicts {
		out.Verdicts = append(out.Verdicts, verdictJSON{
			Outcome:  v.Outcome.String(),
			Count:    v.Count,
			First:    v.First,
			Error:    v.Sample,
			Schedule: v.Schedule,
		})
	}
	if f := rep.FirstFailure; f != nil {
		out.FirstFailure = &failureJSON{
			Outcome:  f.Outcome.String(),
			Error:    f.Err,
			Schedule: f.Schedule,
			Index:    f.Index,
		}
	}
	return out
}
