// Package serve implements the PARCOACH validation daemon: the
// HTTP+JSON service cmd/parcoachd mounts. One long-lived process keeps
// compiled artifacts (content-addressed, singleflight-deduplicated) and
// warm interpreter sessions in memory, so validating a program costs a
// hash lookup plus the runs themselves instead of a full pipeline
// compile per request.
//
// Endpoints:
//
//	POST /compile  — compile (or hit the cache); returns the artifact
//	                 key and the verification diagnostics
//	POST /run      — one run of a cached or inline program, optionally
//	                 under a replay token
//	POST /explore  — schedule exploration; "stream":true switches the
//	                 response to NDJSON progress events (verdict deltas,
//	                 first-failure replay token, heartbeats, final report)
//	GET  /healthz  — liveness
//	GET  /stats    — cache hit rate, queue depths, warm sessions,
//	                 schedules/sec
//
// Load shedding is explicit: at most Config.MaxConcurrent requests
// execute at once, at most Config.QueueDepth more wait; beyond that the
// daemon answers 429 with a Retry-After header instead of letting
// latency grow without bound.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parcoach"
	"parcoach/internal/chaos"
	"parcoach/internal/interp"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the compile pool width (0 = GOMAXPROCS) — one persistent
	// pool shared by every compilation for the server's lifetime.
	Workers int
	// CacheCap bounds the artifact cache (LRU beyond it; default 128).
	CacheCap int
	// MaxConcurrent bounds requests executing at once (default
	// max(2, NumCPU)).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a slot; arrivals beyond it
	// are rejected with 429 (default 64).
	QueueDepth int
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxSourceBytes bounds request bodies (default 4 MiB).
	MaxSourceBytes int64
	// DrainTimeout is handed to every warm session (see
	// interp.Options.DrainTimeout; 0 = the interpreter's default).
	DrainTimeout time.Duration
	// RunTimeout arms the per-run wall-clock watchdog on every warm
	// session (interp.Options.WallTimeout): a wedged run is abandoned
	// after this long and answers with outcome "timeout" instead of
	// holding a request slot until the client gives up. Zero disables.
	RunTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheCap <= 0 {
		c.CacheCap = 128
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.NumCPU()
		if c.MaxConcurrent < 2 {
			c.MaxConcurrent = 2
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 4 << 20
	}
	return c
}

// Server is the daemon state: the artifact cache, the shared compiler
// pool, and the admission machinery. Mount it as an http.Handler.
type Server struct {
	cfg      Config
	compiler *parcoach.Compiler
	mux      *http.ServeMux
	start    time.Time

	// slots is the concurrency semaphore; queued counts waiters,
	// rejected counts 429s.
	slots    chan struct{}
	queued   atomic.Int64
	rejected atomic.Int64

	mu    sync.Mutex
	cache map[string]*artifact

	requests atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64

	// Exploration throughput: schedules run and wall nanoseconds spent
	// inside explorations, for the /stats schedules-per-second figure.
	schedTotal atomic.Int64
	schedNanos atomic.Int64

	// Robustness counters: requests whose handler panicked (quarantined
	// at the middleware, answered 500) and requests whose client
	// disconnected mid-flight (context canceled).
	panicked atomic.Int64
	canceled atomic.Int64
}

// New builds a server; zero Config fields take the documented defaults.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		compiler: parcoach.NewCompiler(cfg.Workers),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		cache:    make(map[string]*artifact),
	}
	s.mux.HandleFunc("POST /compile", s.guarded(s.handleCompile))
	s.mux.HandleFunc("POST /run", s.guarded(s.handleRun))
	s.mux.HandleFunc("POST /explore", s.guarded(s.handleExplore))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errBusy marks admission failure: queue full, shed the request.
var errBusy = errors.New("serve: at capacity")

// acquire admits the request: take a slot immediately, or wait in the
// bounded queue. errBusy means 429; a context error means the client
// gave up while queued.
func (s *Server) acquire(r *http.Request) (release func(), err error) {
	release = func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return release, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return nil, errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return release, nil
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
}

// guarded wraps a handler with admission control, the body bound, panic
// quarantine (a panicking handler answers 500 and the daemon lives on —
// the slot is released, the caches stay consistent), and disconnect
// accounting.
func (s *Server) guarded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		release, err := s.acquire(r)
		if err == errBusy {
			w.Header().Set("Retry-After",
				strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		if err != nil {
			s.canceled.Add(1)
			return // client went away while queued; nothing to answer
		}
		defer release()
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec) // the sentinel means "hang up", not "bug"
				}
				s.panicked.Add(1)
				// If the handler already committed the response this write
				// is a no-op; a truncated body is the best a committed
				// stream can do (streamed explore emits its own terminal
				// error event before this point).
				writeError(w, http.StatusInternalServerError,
					"internal error: %v", interp.NewQuarantineError("serve.request", rec, debug.Stack()))
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
		chaos.Here("serve.request")
		h(w, r)
		if r.Context().Err() != nil {
			s.canceled.Add(1)
		}
	}
}

// writeError answers with the uniform JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON answers 200 with v.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeInto parses the request body, rejecting unknown fields so a
// typo'd option fails loudly instead of silently running defaults.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSec float64 `json:"uptimeSec"`
	Requests  int64   `json:"requests"`
	Cache     struct {
		Entries int     `json:"entries"`
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hitRate"`
		Evicted int64   `json:"evicted"`
	} `json:"cache"`
	Queue struct {
		Slots    int   `json:"slots"`
		Inflight int   `json:"inflight"`
		Queued   int64 `json:"queued"`
		Rejected int64 `json:"rejected"`
	} `json:"queue"`
	Sessions struct {
		Warm int `json:"warm"`
		// AbandonedRuns counts runs the warm sessions gave up on at the
		// drain timeout (leaked state, never reused); AbandonedWorlds is
		// the same counter process-wide (all sessions ever).
		AbandonedRuns   int64 `json:"abandonedRuns"`
		AbandonedWorlds int64 `json:"abandonedWorlds"`
	} `json:"sessions"`
	Explore struct {
		Schedules       int64   `json:"schedules"`
		SchedulesPerSec float64 `json:"schedulesPerSec"`
	} `json:"explore"`
	Robust struct {
		// CanceledRequests counts requests whose client disconnected
		// (while queued or mid-handler); QuarantinedPanics counts handler
		// panics caught by the middleware (each answered 500).
		CanceledRequests  int64 `json:"canceledRequests"`
		QuarantinedPanics int64 `json:"quarantinedPanics"`
		// CanceledRuns / WatchdogRuns are the interpreter's process-wide
		// counts of runs stopped by context cancellation and by the
		// per-run wall-clock watchdog (Config.RunTimeout).
		CanceledRuns int64 `json:"canceledRuns"`
		WatchdogRuns int64 `json:"watchdogRuns"`
	} `json:"robust"`
}

// Snapshot returns the current server statistics (the /stats payload).
func (s *Server) Snapshot() Stats {
	var st Stats
	st.UptimeSec = time.Since(s.start).Seconds()
	st.Requests = s.requests.Load()
	st.Cache.Hits = s.hits.Load()
	st.Cache.Misses = s.misses.Load()
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits) / float64(total)
	}
	st.Cache.Evicted = s.evicted.Load()
	s.mu.Lock()
	st.Cache.Entries = len(s.cache)
	for _, a := range s.cache {
		warm, abandoned := a.sessionStats()
		st.Sessions.Warm += warm
		st.Sessions.AbandonedRuns += abandoned
	}
	s.mu.Unlock()
	st.Queue.Slots = s.cfg.MaxConcurrent
	st.Queue.Inflight = len(s.slots)
	st.Queue.Queued = s.queued.Load()
	st.Queue.Rejected = s.rejected.Load()
	st.Sessions.AbandonedWorlds = abandonedWorldsCount()
	st.Robust.CanceledRequests = s.canceled.Load()
	st.Robust.QuarantinedPanics = s.panicked.Load()
	st.Robust.CanceledRuns = interp.CanceledRuns()
	st.Robust.WatchdogRuns = interp.WatchdogRuns()
	st.Explore.Schedules = s.schedTotal.Load()
	if ns := s.schedNanos.Load(); ns > 0 {
		st.Explore.SchedulesPerSec = float64(st.Explore.Schedules) / (float64(ns) / 1e9)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Snapshot())
}
