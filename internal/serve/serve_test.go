package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parcoach"
	"parcoach/internal/explore"
	"parcoach/internal/interp"
)

// buggySrc produces analysis warnings and instrumentation — the
// interesting case for diagnostics caching.
const buggySrc = `
func main() {
	MPI_Init()
	var x = 0
	if rank() == 0 {
		MPI_Bcast(x)
	}
	parallel num_threads(2) {
		MPI_Barrier()
	}
	MPI_Finalize()
}`

const cleanSrc = `
func main() {
	MPI_Init()
	MPI_Barrier()
	MPI_Finalize()
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad response %q: %v", raw, err)
	}
	return v
}

// TestCompileCacheDiagnosticsByteIdentical: the second identical
// submission must hit the cache and serve diagnostics byte-identical to
// both the first response and a fresh out-of-band compile.
func TestCompileCacheDiagnosticsByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := map[string]any{"name": "buggy.mh", "source": buggySrc}

	code, raw := postJSON(t, ts.URL+"/compile", req)
	if code != http.StatusOK {
		t.Fatalf("first compile: %d %s", code, raw)
	}
	first := decode[compileResponse](t, raw)
	if first.Cached {
		t.Error("first compile claims cached")
	}
	if first.Key == "" || len(first.Diagnostics) == 0 || !first.Instrumented {
		t.Fatalf("unexpected first response: %+v", first)
	}

	code, raw2 := postJSON(t, ts.URL+"/compile", req)
	if code != http.StatusOK {
		t.Fatalf("second compile: %d %s", code, raw2)
	}
	second := decode[compileResponse](t, raw2)
	if !second.Cached {
		t.Error("second compile missed the cache")
	}
	second.Cached = first.Cached
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cache hit differs from miss:\n%+v\n%+v", first, second)
	}

	// Ground truth: a fresh compile outside the daemon renders the same
	// diagnostic lines in the same order.
	prog, err := parcoach.Compile("buggy.mh", buggySrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	var fresh []string
	for _, d := range prog.Diagnostics() {
		fresh = append(fresh, d.String())
	}
	if !reflect.DeepEqual(first.Diagnostics, fresh) {
		t.Errorf("cached diagnostics differ from fresh compile:\n%v\n%v", first.Diagnostics, fresh)
	}
	if parcoach.CacheKey("buggy.mh", buggySrc, parcoach.Options{Mode: parcoach.ModeFull}) != first.Key {
		t.Error("served key does not match CacheKey")
	}

	st := s.Snapshot()
	if st.Cache.Misses != 1 || st.Cache.Hits < 1 {
		t.Errorf("stats: misses=%d hits=%d, want 1 miss and ≥1 hit", st.Cache.Misses, st.Cache.Hits)
	}
}

// TestCompileErrorCached: compile failures are answered 422 and cached —
// the same broken source does not recompile.
func TestCompileErrorCached(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := map[string]any{"name": "bad.mh", "source": "func main( {"}
	for i := 0; i < 2; i++ {
		code, raw := postJSON(t, ts.URL+"/compile", req)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("attempt %d: status %d %s", i, code, raw)
		}
	}
	if st := s.Snapshot(); st.Cache.Misses != 1 {
		t.Errorf("broken source recompiled: %d misses", st.Cache.Misses)
	}
}

// TestSingleflight: concurrent identical submissions compile exactly
// once; exactly one response reports cached=false.
func TestSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 8
	var wg sync.WaitGroup
	results := make([]compileResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, raw := postJSON(t, ts.URL+"/compile",
				map[string]any{"name": "clean.mh", "source": cleanSrc})
			if code == http.StatusOK {
				json.Unmarshal(raw, &results[i])
			}
		}(i)
	}
	wg.Wait()
	var misses int
	for i, r := range results {
		if r.Key == "" {
			t.Fatalf("request %d failed", i)
		}
		if r.Key != results[0].Key {
			t.Fatalf("divergent keys: %s vs %s", r.Key, results[0].Key)
		}
		if !r.Cached {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d requests compiled, want exactly 1", misses)
	}
	if st := s.Snapshot(); st.Cache.Misses != 1 {
		t.Errorf("stats count %d misses, want 1", st.Cache.Misses)
	}
}

// TestBackpressure: with every slot held and the queue full, the next
// request is shed with 429 + Retry-After instead of waiting.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	s.slots <- struct{}{} // occupy the only slot

	// One request parks in the queue.
	queuedDone := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, ts.URL+"/compile",
			map[string]any{"name": "clean.mh", "source": cleanSrc})
		queuedDone <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next arrival must be rejected, now.
	resp, err := http.Post(ts.URL+"/compile", "application/json",
		bytes.NewReader([]byte(`{"name":"x.mh","source":"func main() { MPI_Init() MPI_Finalize() }"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	<-s.slots // release; the queued request proceeds
	if code := <-queuedDone; code != http.StatusOK {
		t.Fatalf("queued request finished with %d", code)
	}
	if st := s.Snapshot(); st.Queue.Rejected != 1 {
		t.Errorf("rejected=%d, want 1", st.Queue.Rejected)
	}
}

// TestRunEndpoint: a clean run by key, including output capture and a
// 404 for an unknown key.
func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, raw := postJSON(t, ts.URL+"/compile", map[string]any{"name": "clean.mh", "source": cleanSrc})
	if code != http.StatusOK {
		t.Fatalf("compile: %d %s", code, raw)
	}
	key := decode[compileResponse](t, raw).Key

	code, raw = postJSON(t, ts.URL+"/run", map[string]any{"key": key, "procs": 2})
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, raw)
	}
	run := decode[runResponse](t, raw)
	if run.Outcome != "clean" || run.Error != "" {
		t.Fatalf("clean program ran dirty: %+v", run)
	}
	if run.Stats.Steps == 0 {
		t.Error("run stats empty")
	}

	code, raw = postJSON(t, ts.URL+"/run", map[string]any{"key": "sha256:feedface"})
	if code != http.StatusNotFound {
		t.Fatalf("unknown key: %d %s", code, raw)
	}
}

// TestExploreStreamAndReplay is the end-to-end contract: a streamed DFS
// exploration of the planted racer must surface the deadlock as a
// verdict delta and a failure event whose replay token, fed back to
// /run against the same cached artifact, reproduces the deadlock.
func TestExploreStreamAndReplay(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{
		"name": "racer.mh", "source": explore.BenchRacerSrc,
		"strategy": "dfs", "schedules": 256, "workers": 4,
		"stream": true, "progressEvery": 16,
	})
	resp, err := http.Post(ts.URL+"/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	var (
		events  []streamEvent
		scanner = bufio.NewScanner(resp.Body)
	)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		events = append(events, ev)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 || events[0].Event != "start" || events[0].Key == "" {
		t.Fatalf("bad stream shape: %+v", events)
	}
	last := events[len(events)-1]
	if last.Event != "report" || last.Report == nil {
		t.Fatalf("stream did not end with a report: %+v", last)
	}
	var failure *streamEvent
	verdicts := map[string]bool{}
	for i := range events[1 : len(events)-1] {
		ev := &events[1+i]
		switch ev.Event {
		case "verdict":
			if verdicts[ev.Outcome] {
				t.Errorf("outcome %s streamed as a verdict twice", ev.Outcome)
			}
			verdicts[ev.Outcome] = true
		case "failure":
			if failure == nil {
				failure = ev
			}
		}
	}
	if failure == nil || failure.Schedule == "" || failure.Outcome != "deadlock" {
		t.Fatalf("racer exploration streamed no deadlock failure: %+v", failure)
	}
	if len(verdicts) != len(last.Report.Verdicts) {
		t.Errorf("streamed %d verdict classes, report has %d", len(verdicts), len(last.Report.Verdicts))
	}

	// Feed the failure token back: same artifact (by key), same run
	// parameters — the replay must reproduce the deadlock.
	code, raw := postJSON(t, ts.URL+"/run", map[string]any{
		"key": events[0].Key, "schedule": failure.Schedule,
	})
	if code != http.StatusOK {
		t.Fatalf("replay: %d %s", code, raw)
	}
	replay := decode[runResponse](t, raw)
	if replay.Outcome != "deadlock" || replay.Diverged {
		t.Fatalf("replay did not reproduce: %+v", replay)
	}

	st := s.Snapshot()
	if st.Sessions.Warm == 0 {
		t.Error("no warm sessions after exploration")
	}
	if st.Explore.Schedules < int64(last.Report.Schedules) {
		t.Errorf("stats count %d schedules, report ran %d", st.Explore.Schedules, last.Report.Schedules)
	}
	if st.Explore.SchedulesPerSec <= 0 {
		t.Error("schedules/sec not measured")
	}
}

// TestExploreUnstreamed: the plain JSON report path.
func TestExploreUnstreamed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, raw := postJSON(t, ts.URL+"/explore", map[string]any{
		"name": "racer.mh", "source": explore.BenchRacerSrc,
		"strategy": "random", "schedules": 16, "seed": 1,
	})
	if code != http.StatusOK {
		t.Fatalf("explore: %d %s", code, raw)
	}
	rep := decode[reportJSON](t, raw)
	if rep.Strategy != "random" || rep.Schedules != 16 || len(rep.Verdicts) == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
}

// TestEviction: the cache honors its cap, evicting least-recently-used
// entries; an evicted key answers 404.
func TestEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheCap: 2})
	keys := make([]string, 3)
	for i := range keys {
		code, raw := postJSON(t, ts.URL+"/compile", map[string]any{
			"name":   fmt.Sprintf("p%d.mh", i),
			"source": cleanSrc + fmt.Sprintf("\n// %d\n", i),
		})
		if code != http.StatusOK {
			t.Fatalf("compile %d: %d %s", i, code, raw)
		}
		keys[i] = decode[compileResponse](t, raw).Key
	}
	if st := s.Snapshot(); st.Cache.Entries != 2 || st.Cache.Evicted != 1 {
		t.Fatalf("entries=%d evicted=%d, want 2/1", st.Cache.Entries, st.Cache.Evicted)
	}
	code, _ := postJSON(t, ts.URL+"/run", map[string]any{"key": keys[0]})
	if code != http.StatusNotFound {
		t.Errorf("evicted key answered %d, want 404", code)
	}
}

// TestHealthz: liveness answers without taking a slot.
func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	s.slots <- struct{}{} // saturate
	defer func() { <-s.slots }()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

// wrongOpSrc carries a value bug the static phase also warns about:
// rank 0 reduces with max while the others reduce with sum.
const wrongOpSrc = `
func main() {
	MPI_Init()
	var x = rank() + 2
	if rank() == 0 {
		MPI_Allreduce(x, x, max)
	} else {
		MPI_Allreduce(x, x, sum)
	}
	MPI_Finalize()
}`

// tornSrc races a nowait team worker's rewrite of the collective's
// source buffer against the collective itself — the schedule-dependent
// value-bug shape.
const tornSrc = `
func main() {
	MPI_Init()
	var src[4]
	var dst[4]
	for i = 0 .. 4 {
		src[i] = i + 1
	}
	parallel num_threads(2) {
		single nowait {
			for j = 0 .. 4 {
				src[j] = src[j] + 100
			}
		}
		single {
			MPI_Alltoall(dst, src)
		}
	}
	MPI_Finalize()
}`

// TestValueBugCachedDiagnosticsAndRun: a value-bug program's cached
// compile answer is byte-identical to the miss, and /run on the warm
// artifact reports the value oracle's verdict deterministically.
func TestValueBugCachedDiagnosticsAndRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{"name": "wrongop.mh", "source": wrongOpSrc}

	code, raw := postJSON(t, ts.URL+"/compile", req)
	if code != http.StatusOK {
		t.Fatalf("compile: %d %s", code, raw)
	}
	first := decode[compileResponse](t, raw)
	if len(first.Diagnostics) == 0 {
		t.Fatalf("wrong-op program compiled without a static warning: %+v", first)
	}
	code, raw2 := postJSON(t, ts.URL+"/compile", req)
	if code != http.StatusOK {
		t.Fatalf("second compile: %d %s", code, raw2)
	}
	second := decode[compileResponse](t, raw2)
	if !second.Cached {
		t.Error("second compile missed the cache")
	}
	a, _ := json.Marshal(first.Diagnostics)
	b, _ := json.Marshal(second.Diagnostics)
	if !bytes.Equal(a, b) {
		t.Errorf("cached diagnostics not byte-identical:\n%s\n%s", a, b)
	}

	for i := 0; i < 2; i++ {
		code, raw = postJSON(t, ts.URL+"/run", map[string]any{"key": first.Key, "procs": 2})
		if code != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, code, raw)
		}
		run := decode[runResponse](t, raw)
		if run.Outcome != "value-error" || !strings.Contains(run.Error, "wrong-op") {
			t.Fatalf("run %d: value bug not caught by the oracle: %+v", i, run)
		}
	}
}

// TestExploreStreamValueVerdict: the schedule-dependent torn-buffer race
// surfaces through the streamed NDJSON protocol as a value-error verdict
// delta with a replayable schedule, and the replayed token reproduces
// the oracle abort on the same cached artifact.
func TestExploreStreamValueVerdict(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{
		"name": "torn.mh", "source": tornSrc,
		"strategy": "random", "schedules": 16, "procs": 2, "threads": 2,
		"stream": true,
	})
	resp, err := http.Post(ts.URL+"/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var (
		key     string
		verdict *streamEvent
		scanner = bufio.NewScanner(resp.Body)
	)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scanner.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		if ev.Event == "start" {
			key = ev.Key
		}
		if ev.Event == "verdict" && ev.Outcome == "value-error" && verdict == nil {
			verdict = &ev
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if verdict == nil || verdict.Schedule == "" {
		t.Fatal("torn-buffer exploration streamed no value-error verdict")
	}
	if !strings.Contains(verdict.Error, "torn-buffer") {
		t.Errorf("verdict error does not name the check: %q", verdict.Error)
	}

	code, raw := postJSON(t, ts.URL+"/run", map[string]any{
		"key": key, "procs": 2, "threads": 2, "schedule": verdict.Schedule,
	})
	if code != http.StatusOK {
		t.Fatalf("replay: %d %s", code, raw)
	}
	replay := decode[runResponse](t, raw)
	if replay.Outcome != "value-error" || replay.Diverged {
		t.Fatalf("replay did not reproduce the torn buffer: %+v", replay)
	}
}

// TestExploreStreamMidRunError: an exploration that dies mid-stream must
// still end the NDJSON stream with a terminal typed error event — the
// HTTP status is long committed, so silent truncation is the only other
// observable, and clients cannot tell it from a network fault.
func TestExploreStreamMidRunError(t *testing.T) {
	old := exploreStream
	exploreStream = func(sess *interp.Session, opts explore.Options) *explore.Report {
		opts.Progress(explore.ProgressEvent{Done: 1})
		panic("injected mid-run failure")
	}
	t.Cleanup(func() { exploreStream = old })

	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{
		"name": "clean.mh", "source": cleanSrc,
		"strategy": "random", "schedules": 4,
		"stream": true, "progressEvery": 1,
	})
	resp, err := http.Post(ts.URL+"/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: %d", resp.StatusCode)
	}
	var events []streamEvent
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		events = append(events, ev)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 || events[0].Event != "start" {
		t.Fatalf("bad stream shape: %+v", events)
	}
	last := events[len(events)-1]
	if last.Event != "error" || !strings.Contains(last.Error, "injected mid-run failure") {
		t.Fatalf("stream did not end with a typed error event: %+v", last)
	}
	for _, ev := range events {
		if ev.Event == "report" {
			t.Fatalf("failed exploration still emitted a report: %+v", ev)
		}
	}
}
