package parcoach_test

import (
	"fmt"
	"strings"
	"testing"

	"parcoach"
	"parcoach/internal/workload"
)

// batchFiles builds a mixed compile workload: the five Figure 1
// benchmarks, the seeded micro-error corpus, and a couple of scaled
// variants — 16 programs, each with several functions.
func batchFiles() []parcoach.File {
	var files []parcoach.File
	for _, w := range workload.Figure1Set(workload.ScaleS) {
		files = append(files, parcoach.File{Name: w.Name, Source: w.Source})
	}
	for _, bug := range workload.AllBugs {
		w := workload.Micro(bug)
		files = append(files, parcoach.File{Name: w.Name, Source: w.Source})
	}
	for _, w := range []workload.Workload{
		workload.BTMZ(workload.ScaleA, workload.BugNone),
		workload.EPCC(workload.ScaleA, workload.BugNone),
		workload.HERA(workload.ScaleA, workload.BugEarlyReturn),
		workload.SPMZ(workload.ScaleA, workload.BugRankDependentCollective),
		workload.LUMZ(workload.ScaleA, workload.BugMismatchedKinds),
	} {
		files = append(files, parcoach.File{Name: "a-" + w.Name, Source: w.Source})
	}
	return files
}

// diagString renders a program's diagnostics into one comparable blob.
func diagString(p *parcoach.Program) string {
	var b strings.Builder
	for _, d := range p.Diagnostics() {
		fmt.Fprintln(&b, d)
	}
	return b.String()
}

// TestCompileBatchMatchesSerial is the core determinism contract: a
// pooled batch compile produces byte-identical diagnostics and identical
// CompileStats to a serial compile of each file.
func TestCompileBatchMatchesSerial(t *testing.T) {
	files := batchFiles()
	if len(files) < 16 {
		t.Fatalf("want >= 16 files, have %d", len(files))
	}
	for _, mode := range []parcoach.Mode{parcoach.ModeBaseline, parcoach.ModeAnalyze, parcoach.ModeFull} {
		serialOpts := parcoach.Options{Mode: mode, Workers: 1}
		poolOpts := parcoach.Options{Mode: mode, Workers: 4}
		pooled, err := parcoach.CompileBatch(files, poolOpts)
		if err != nil {
			t.Fatalf("%s: batch: %v", mode, err)
		}
		for i, f := range files {
			serial, err := parcoach.Compile(f.Name, f.Source, serialOpts)
			if err != nil {
				t.Fatalf("%s: %s: %v", mode, f.Name, err)
			}
			p := pooled[i]
			if p == nil {
				t.Fatalf("%s: %s: pooled program missing", mode, f.Name)
			}
			if got, want := diagString(p), diagString(serial); got != want {
				t.Errorf("%s: %s: diagnostics differ\npooled:\n%s\nserial:\n%s", mode, f.Name, got, want)
			}
			if p.Stats != serial.Stats {
				t.Errorf("%s: %s: stats differ\npooled: %+v\nserial: %+v", mode, f.Name, p.Stats, serial.Stats)
			}
		}
	}
}

// TestCompileDeterministicAcrossRuns asserts two compiles of the same
// source yield identical diagnostic output (the parallel phases must not
// leak scheduling order into the result).
func TestCompileDeterministicAcrossRuns(t *testing.T) {
	w := workload.HERA(workload.ScaleS, workload.BugRankDependentCollective)
	first, err := parcoach.Compile(w.Name, w.Source, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Diagnostics()) == 0 {
		t.Fatal("workload must produce diagnostics for the comparison to mean anything")
	}
	for rep := 0; rep < 4; rep++ {
		again, err := parcoach.Compile(w.Name, w.Source, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		if diagString(again) != diagString(first) {
			t.Fatalf("diagnostics differ between identical compiles:\n%s\nvs:\n%s",
				diagString(again), diagString(first))
		}
		if again.Stats != first.Stats {
			t.Fatalf("stats differ between identical compiles: %+v vs %+v", again.Stats, first.Stats)
		}
	}
}

// TestCompileBatchConcurrent compiles 16 programs concurrently on a wide
// pool; under `go test -race` this doubles as the pipeline's data-race
// certification.
func TestCompileBatchConcurrent(t *testing.T) {
	files := batchFiles()[:16]
	progs, err := parcoach.CompileBatch(files, parcoach.Options{Mode: parcoach.ModeFull, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if p == nil {
			t.Fatalf("program %d missing", i)
		}
		if len(p.IR) == 0 {
			t.Errorf("%s: no IR", p.Name)
		}
		if p.Stats.Functions == 0 || p.Stats.CFGNodes == 0 {
			t.Errorf("%s: stats empty: %+v", p.Name, p.Stats)
		}
	}
}

// TestCompileBatchPartialFailure: bad files fail with joined errors while
// the good files still compile.
func TestCompileBatchPartialFailure(t *testing.T) {
	files := []parcoach.File{
		{Name: "good.mh", Source: "func main() { MPI_Init() MPI_Finalize() }"},
		{Name: "parse-error.mh", Source: "func main( {"},
		{Name: "sem-error.mh", Source: "func main() { x = 1 }"},
	}
	progs, err := parcoach.CompileBatch(files, parcoach.Options{Workers: 2})
	if err == nil {
		t.Fatal("batch with bad files must report an error")
	}
	if progs[0] == nil || progs[1] != nil || progs[2] != nil {
		t.Errorf("per-file results wrong: %v", progs)
	}
	msg := err.Error()
	if !strings.Contains(msg, "parse-error.mh") || !strings.Contains(msg, "sem-error.mh") {
		t.Errorf("joined error must name both failing files: %v", err)
	}
}

// TestPassTimingsPopulated checks the per-pass timing view the batch API
// exposes.
func TestPassTimingsPopulated(t *testing.T) {
	p, err := parcoach.Compile("clean.mh", cleanSrc, parcoach.Options{Mode: parcoach.ModeFull, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Timing.Passes) == 0 {
		t.Fatal("no pass timings recorded")
	}
	want := map[string]bool{
		"frontend": false, "fold": false, "cfg": false, "dominators": false,
		"summaries": false, "check": false, "instrument": false,
		"dce": false, "lower": false, "regalloc": false,
	}
	var sum int64
	for _, pt := range p.Timing.Passes {
		if _, ok := want[pt.Name]; ok {
			want[pt.Name] = true
		}
		sum += int64(pt.Duration)
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("pass %q missing from timings: %+v", name, p.Timing.Passes)
		}
	}
	if sum == 0 {
		t.Error("pass durations all zero")
	}
	if p.Graphs == nil || len(p.Graphs) != p.Stats.Functions {
		t.Errorf("cached graphs missing: %d graphs for %d functions", len(p.Graphs), p.Stats.Functions)
	}
}
