// Benchmarks regenerating the paper's evaluation under testing.B:
//
//   - BenchmarkCompile/*            — Figure 1 inputs: compile time of each
//     benchmark in baseline / warnings / warnings+codegen mode; the
//     overhead percentages derive from the mode ratios.
//   - BenchmarkAnalysisOnly/*       — the three verification phases alone.
//   - BenchmarkRuntime/*            — the runtime-overhead experiment:
//     uninstrumented vs selectively instrumented vs fully instrumented
//     (raw PDF+) execution of the correct benchmarks.
//   - BenchmarkDetection/*          — time to a verified abort on the
//     seeded micro error corpus (the "stops as soon as unavoidable" claim).
//   - BenchmarkAblationTaint        — the interprocedural rank-dependence
//     refinement's cost (analysis with and without the filter).
package parcoach_test

import (
	"testing"

	"parcoach"
	"parcoach/internal/core"
	"parcoach/internal/explore"
	"parcoach/internal/interp"
	"parcoach/internal/mhgen"
	"parcoach/internal/omp"
	"parcoach/internal/parser"
	"parcoach/internal/workload"
)

// benchSet holds the Figure 1 benchmarks at the paper-like scale B for
// compile measurements and at scale S for execution measurements (runtime
// benches execute the full program per iteration).
var (
	compileSet = workload.Figure1Set(workload.ScaleB)
	runtimeSet = workload.Figure1Set(workload.ScaleS)
)

// BenchmarkCompileBatch pins the batch-compile speedup: the same
// multi-program, many-functions-per-program workload compiled on a
// serial pool (workers-01, the reference) and on widening pools. The
// bench trajectory tracks the ratio; diagnostics and stats are
// byte-identical across widths (TestCompileBatchMatchesSerial).
func BenchmarkCompileBatch(b *testing.B) {
	var files []parcoach.File
	for _, w := range workload.Figure1Set(workload.ScaleA) {
		files = append(files, parcoach.File{Name: w.Name, Source: w.Source})
	}
	for _, w := range workload.Figure1Set(workload.ScaleB) {
		files = append(files, parcoach.File{Name: "b-" + w.Name, Source: w.Source})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parcoach.CompileBatch(files, parcoach.Options{
					Mode: parcoach.ModeFull, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMhgenCompile puts generator-shaped inputs on the perf
// trajectory: batches of seeded random programs (internal/mhgen) at
// small and medium scale through CompileBatch in full mode. Generated
// programs stress different paths than the structured Figure 1 set —
// mutual-recursion SCCs, deep construct nesting, planted-bug
// instrumentation — so a regression specific to those shapes shows here
// first. Generation happens outside the timed loop.
func BenchmarkMhgenCompile(b *testing.B) {
	for _, scale := range []struct {
		name string
		size mhgen.Size
		n    uint64
	}{
		{"small-32", mhgen.SizeSmall, 32},
		{"medium-16", mhgen.SizeMedium, 16},
	} {
		var files []parcoach.File
		for seed := uint64(0); seed < scale.n; seed++ {
			bug := workload.BugNone
			if seed%4 == 3 { // a quarter carry instrumentation-heavy bugs
				bug = workload.AllBugs[seed%uint64(len(workload.AllBugs))]
			}
			gp := mhgen.Generate(mhgen.Config{Seed: seed, Bug: bug, Size: scale.size})
			files = append(files, parcoach.File{Name: gp.Name, Source: gp.Source})
		}
		b.Run(scale.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parcoach.CompileBatch(files, parcoach.Options{
					Mode: parcoach.ModeFull, Workers: 4,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompile(b *testing.B) {
	modes := []struct {
		name string
		mode parcoach.Mode
	}{
		{"baseline", parcoach.ModeBaseline},
		{"warnings", parcoach.ModeAnalyze},
		{"full", parcoach.ModeFull},
	}
	for _, w := range compileSet {
		for _, m := range modes {
			b.Run(w.Name+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := parcoach.Compile(w.Name, w.Source, parcoach.Options{Mode: m.mode}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAnalysisOnly(b *testing.B) {
	for _, w := range compileSet {
		prog, err := parser.Parse(w.Name, w.Source)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Analyze(prog, core.Options{})
			}
		})
	}
}

func BenchmarkRuntime(b *testing.B) {
	for _, w := range runtimeSet {
		sel, err := parcoach.Compile(w.Name, w.Source, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			b.Fatal(err)
		}
		full, err := parcoach.Compile(w.Name, w.Source, parcoach.Options{Mode: parcoach.ModeFull, RawPDF: true})
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, p *parcoach.Program, instrumented bool) {
			for i := 0; i < b.N; i++ {
				var res *parcoach.RunResult
				if instrumented {
					res = p.Run(parcoach.RunOptions{Procs: 2, Threads: 2})
				} else {
					res = p.RunUninstrumented(parcoach.RunOptions{Procs: 2, Threads: 2})
				}
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
		b.Run(w.Name+"/plain", func(b *testing.B) { run(b, sel, false) })
		b.Run(w.Name+"/selective", func(b *testing.B) { run(b, sel, true) })
		b.Run(w.Name+"/full-instr", func(b *testing.B) { run(b, full, true) })
	}
}

func BenchmarkDetection(b *testing.B) {
	for _, bug := range workload.AllBugs {
		if bug == workload.BugTornBuffer {
			// Schedule-dependent: a free-running run only sometimes trips
			// the value oracle, so there is no deterministic time-to-abort
			// to measure here (the diff harness judges it by exploration).
			continue
		}
		w := workload.Micro(bug)
		p, err := parcoach.Compile(w.Name, w.Source, parcoach.Options{Mode: parcoach.ModeFull})
		if err != nil {
			b.Fatal(err)
		}
		procs := 2
		if bug == workload.BugConcurrentSingles || bug == workload.BugSectionsCollectives {
			procs = 1
		}
		b.Run(bug.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := p.Run(parcoach.RunOptions{Procs: procs, Threads: 2, Policy: omp.RoundRobin})
				if res.Err == nil {
					b.Fatal("seeded bug not detected")
				}
			}
		})
	}
}

func BenchmarkAblationTaint(b *testing.B) {
	w := workload.HERA(workload.ScaleB, workload.BugNone)
	prog, err := parser.Parse(w.Name, w.Source)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("refined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Analyze(prog, core.Options{})
		}
	})
	b.Run("raw-pdf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Analyze(prog, core.Options{RawPDF: true})
		}
	})
}

// BenchmarkInterpreter pins the simulated-runtime cost itself: a hybrid
// step loop at varying thread counts.
func BenchmarkInterpreter(b *testing.B) {
	src := `
func main() {
	MPI_Init()
	var x = rank()
	for step = 0 .. 10 {
		parallel {
			pfor i = 0 .. 64 {
				atomic x += 1
			}
			single {
				MPI_Allreduce(x, x, sum)
			}
		}
	}
	MPI_Finalize()
}`
	prog, err := parser.Parse("interp.mh", src)
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(benchName("threads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := interp.Run(prog, interp.Options{Procs: 2, Threads: threads})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// BenchmarkExplore pins the schedule-exploration throughput
// (schedules/sec, via b.ReportMetric) across every strategy and worker
// width, on the property-suite racer and a generated concurrency-bug
// program. The workload program and the strategy × frontier grid are
// shared with cmd/benchjson (explore.BenchRacerSrc / explore.BenchGrid),
// which runs the identical cells and emits BENCH_explore.json for the
// perf trajectory.
func BenchmarkExplore(b *testing.B) {
	gp := mhgen.Generate(mhgen.Config{Seed: 5, Bug: workload.BugConcurrentSingles})
	gen, err := parcoach.Compile(gp.Name+".mh", gp.Source, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		b.Fatal(err)
	}
	racer, err := parcoach.Compile("racer.mh", explore.BenchRacerSrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		b.Fatal(err)
	}
	progs := []struct {
		name           string
		prog           *parcoach.Program
		procs, threads int
	}{
		{"racer", racer, 2, 2},
		{gp.Name, gen, gp.Procs, gp.Threads},
	}
	for _, pc := range progs {
		for _, tc := range explore.BenchGrid(1024) {
			for _, workers := range []int{1, 4, 8} {
				b.Run(pc.name+"/"+tc.Name+"/"+benchName("workers", workers), func(b *testing.B) {
					total := 0
					for i := 0; i < b.N; i++ {
						rep := pc.prog.Explore(parcoach.ExploreOptions{
							Strategy:  tc.Strategy,
							Frontier:  tc.Frontier,
							Schedules: tc.Schedules,
							Workers:   workers,
							Procs:     pc.procs,
							Threads:   pc.threads,
							MaxSteps:  2_000_000,
						})
						if rep.Schedules == 0 {
							b.Fatal("exploration ran no schedules")
						}
						total += rep.Schedules
					}
					b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/s")
				})
			}
		}
	}
}

// BenchmarkExploreDPORReduction pins the metric DPOR exists for:
// schedules-to-exhaustion on the reference racer, plain DFS vs the
// DPOR-reduced frontier, plus their ratio. Raw schedules/sec undersells
// DPOR (each run pays trace recording and race analysis); what matters
// is that exhausting the space takes a small fraction of the runs. The
// ratio is asserted ≥10× so a regression in the reduction — not just in
// run throughput — fails loudly.
func BenchmarkExploreDPORReduction(b *testing.B) {
	racer, err := parcoach.Compile("racer.mh", explore.BenchRacerSrc, parcoach.Options{Mode: parcoach.ModeFull})
	if err != nil {
		b.Fatal(err)
	}
	run := func(f parcoach.ExploreFrontier) *parcoach.ExplorationReport {
		rep := racer.Explore(parcoach.ExploreOptions{
			Strategy: parcoach.ExploreDFS, Frontier: f,
			Schedules: 1 << 16, Workers: 4, Procs: 2, Threads: 2, MaxSteps: 2_000_000,
		})
		if !rep.Exhausted {
			b.Fatalf("frontier %v did not exhaust the racer", f)
		}
		return rep
	}
	var dfs, dpor int
	for i := 0; i < b.N; i++ {
		dfs = run(parcoach.ExploreFrontierSteal).Schedules
		dpor = run(parcoach.ExploreFrontierDPOR).Schedules
	}
	if dpor*10 > dfs {
		b.Fatalf("DPOR reduction below 10x: dpor=%d dfs=%d schedules", dpor, dfs)
	}
	b.ReportMetric(float64(dfs), "dfs-schedules-to-exhaustion")
	b.ReportMetric(float64(dpor), "dpor-schedules-to-exhaustion")
	b.ReportMetric(float64(dfs)/float64(dpor), "reduction-x")
}
